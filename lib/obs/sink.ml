type record =
  | Span of {
      path : string list;
      start : float;
      elapsed : float;
      alloc : float;
      attrs : (string * string) list;
    }
  | Counter of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Histogram of { name : string; stats : Metrics.histogram }

type t = { emit : record -> unit; close : unit -> unit }

let memory () =
  let acc = ref [] in
  ( { emit = (fun r -> acc := r :: !acc); close = (fun () -> ()) },
    fun () -> List.rev !acc )

let report buf =
  let emit = function
    | Span { path; elapsed; attrs; _ } ->
      Buffer.add_string buf
        (Printf.sprintf "span  %-36s %10.3f ms" (String.concat "/" path)
           (1000.0 *. elapsed));
      List.iter
        (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s=%s" k v))
        attrs;
      Buffer.add_char buf '\n'
    | Counter { name; value } ->
      Buffer.add_string buf (Printf.sprintf "count %-36s %10d\n" name value)
    | Gauge { name; value } ->
      Buffer.add_string buf (Printf.sprintf "gauge %-36s %10g\n" name value)
    | Histogram { name; stats } ->
      Buffer.add_string buf
        (Printf.sprintf
           "hist  %-36s count=%d mean=%g p50=%g p90=%g p99=%g max=%g\n" name
           stats.Metrics.count stats.Metrics.mean stats.Metrics.p50
           stats.Metrics.p90 stats.Metrics.p99 stats.Metrics.max)
  in
  { emit; close = (fun () -> ()) }

(* ------------------------------------------------------------------ *)
(* JSON line protocol.  We deliberately avoid a JSON dependency: records
   are flat objects (one level of nesting for span attrs), so a small
   hand-rolled encoder/decoder suffices and keeps the library leaf-level. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 || Char.code c = 0x7f ->
        (* every remaining control character (including DEL) as \uXXXX,
           so any byte string yields a valid JSON line *)
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* round-trippable float: shortest decimal that reads back exactly *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let record_to_json = function
  | Span { path; start; elapsed; alloc; attrs } ->
    let attrs_json =
      String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v))
           attrs)
    in
    Printf.sprintf
      "{\"type\":\"span\",\"path\":\"%s\",\"start\":%s,\"elapsed\":%s,\"alloc\":%s,\"attrs\":{%s}}"
      (escape (String.concat "/" path))
      (float_str start) (float_str elapsed) (float_str alloc) attrs_json
  | Counter { name; value } ->
    Printf.sprintf "{\"type\":\"counter\",\"name\":\"%s\",\"value\":%d}"
      (escape name) value
  | Gauge { name; value } ->
    Printf.sprintf "{\"type\":\"gauge\",\"name\":\"%s\",\"value\":%s}"
      (escape name) (float_str value)
  | Histogram { name; stats } ->
    Printf.sprintf
      "{\"type\":\"histogram\",\"name\":\"%s\",\"count\":%d,\"sum\":%s,\"min\":%s,\"max\":%s,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
      (escape name) stats.Metrics.count (float_str stats.Metrics.sum)
      (float_str stats.Metrics.min) (float_str stats.Metrics.max)
      (float_str stats.Metrics.mean) (float_str stats.Metrics.p50)
      (float_str stats.Metrics.p90) (float_str stats.Metrics.p99)

(* --- minimal JSON value parser (objects, strings, numbers) --- *)

type jvalue = Jstring of string | Jnumber of float | Jobject of (string * jvalue) list

exception Bad of string

let parse_json (s : string) : jvalue =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while !pos < n && (s.[!pos] = ' ' || s.[!pos] = '\t') do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected %c" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some _ -> fail "non-ascii \\u escape"
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      || c = 'n' || c = 'a' || c = 'i' || c = 'f'
      (* nan / inf(inity), which %.17g can produce *)
      || c = 't' || c = 'y'
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstring (parse_string ())
    | Some '{' -> parse_object ()
    | Some _ -> Jnumber (parse_number ())
    | None -> fail "unexpected end of input"
  and parse_object () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then begin
      advance ();
      Jobject []
    end
    else begin
      let fields = ref [] in
      let rec members () =
        skip_ws ();
        let key = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (key, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); members ()
        | Some '}' -> advance ()
        | _ -> fail "expected , or }"
      in
      members ();
      Jobject (List.rev !fields)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let record_of_json line =
  try
    let fields =
      match parse_json (String.trim line) with
      | Jobject fs -> fs
      | _ -> raise (Bad "not an object")
    in
    let str key =
      match List.assoc_opt key fields with
      | Some (Jstring s) -> s
      | _ -> raise (Bad (Printf.sprintf "missing string field %S" key))
    in
    let num key =
      match List.assoc_opt key fields with
      | Some (Jnumber f) -> f
      | _ -> raise (Bad (Printf.sprintf "missing number field %S" key))
    in
    (* lenient: absent numeric field reads as [default] so lines written
       before a field existed still parse *)
    let num_default key default =
      match List.assoc_opt key fields with
      | Some (Jnumber f) -> f
      | _ -> default
    in
    match str "type" with
    | "span" ->
      let attrs =
        match List.assoc_opt "attrs" fields with
        | Some (Jobject kvs) ->
          List.map
            (function
              | k, Jstring v -> (k, v)
              | k, _ -> raise (Bad (Printf.sprintf "non-string attr %S" k)))
            kvs
        | None -> []
        | Some _ -> raise (Bad "attrs is not an object")
      in
      Ok
        (Span
           {
             path = String.split_on_char '/' (str "path");
             start = num "start";
             elapsed = num "elapsed";
             alloc = num_default "alloc" 0.0;
             attrs;
           })
    | "counter" ->
      Ok (Counter { name = str "name"; value = int_of_float (num "value") })
    | "gauge" -> Ok (Gauge { name = str "name"; value = num "value" })
    | "histogram" ->
      Ok
        (Histogram
           {
             name = str "name";
             stats =
               {
                 Metrics.count = int_of_float (num "count");
                 sum = num "sum";
                 min = num "min";
                 max = num "max";
                 mean = num "mean";
                 p50 = num "p50";
                 p90 = num "p90";
                 p99 = num "p99";
               };
           })
    | other -> Error (Printf.sprintf "unknown record type %S" other)
  with Bad msg -> Error msg

let jsonl oc =
  {
    emit =
      (fun r ->
        output_string oc (record_to_json r);
        output_char oc '\n');
    close = (fun () -> flush oc);
  }

let drain ?trace ?metrics sink =
  (match trace with
  | None -> ()
  | Some tr ->
    let rec go rev_path (s : Trace.span) =
      let rev_path = s.Trace.name :: rev_path in
      sink.emit
        (Span
           {
             path = List.rev rev_path;
             start = s.Trace.start;
             elapsed = s.Trace.elapsed;
             alloc = s.Trace.alloc;
             attrs = s.Trace.attrs;
           });
      List.iter (go rev_path) s.Trace.children
    in
    List.iter (go []) (Trace.roots tr));
  (match metrics with
  | None -> ()
  | Some m ->
    List.iter (fun (name, value) -> sink.emit (Counter { name; value })) (Metrics.counters m);
    List.iter (fun (name, value) -> sink.emit (Gauge { name; value })) (Metrics.gauges m);
    List.iter
      (fun (name, stats) -> sink.emit (Histogram { name; stats }))
      (Metrics.histograms m));
  sink.close ()
