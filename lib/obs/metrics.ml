(* growable float array; histograms keep every observation so that exact
   order statistics stay available (our series are small: spans, group
   sizes, per-query row counts) *)
type series = { mutable data : float array; mutable len : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, series) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; histograms = Hashtbl.create 16 }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let observe t name v =
  let s =
    match Hashtbl.find_opt t.histograms name with
    | Some s -> s
    | None ->
      let s = { data = Array.make 16 0.0; len = 0 } in
      Hashtbl.replace t.histograms name s;
      s
  in
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0.0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* nearest-rank percentile over a sorted array *)
let percentile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  sorted.(Stdlib.min (n - 1) (Stdlib.max 0 (rank - 1)))

let summarize s =
  if s.len = 0 then None
  else begin
    let sorted = Array.sub s.data 0 s.len in
    Array.sort Float.compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    Some
      {
        count = s.len;
        sum;
        min = sorted.(0);
        max = sorted.(s.len - 1);
        mean = sum /. float_of_int s.len;
        p50 = percentile sorted 0.5;
        p90 = percentile sorted 0.9;
        p99 = percentile sorted 0.99;
      }
  end

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some s -> summarize s
  | None -> None

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold
    (fun name s acc ->
      match summarize s with Some h -> (name, h) :: acc | None -> acc)
    t.histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge ~into src =
  (* name-sorted iteration so the merged registry's contents never depend
     on hashtable iteration order *)
  List.iter (fun (name, v) -> incr into ~by:v name) (counters src);
  let series =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) src.histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, s) ->
      for i = 0 to s.len - 1 do
        observe into name s.data.(i)
      done)
    series

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name v))
    (counters t);
  List.iter
    (fun (name, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-40s count=%d sum=%g min=%g mean=%g p50=%g p90=%g p99=%g max=%g\n"
           name h.count h.sum h.min h.mean h.p50 h.p90 h.p99 h.max))
    (histograms t);
  Buffer.contents buf
