(* growable float array; exact histograms keep every observation so that
   exact order statistics stay available (bench/test series are small:
   spans, group sizes, per-query row counts).  Serving paths that run
   indefinitely use the bounded variant instead ([observe_bounded]),
   which sketches into a fixed-size [Hdr] at a documented error bound. *)
type series = { mutable data : float array; mutable len : int }

(* a histogram's kind is fixed by whichever observe call creates it;
   later observations of either flavour record into the existing kind *)
type hist = Exact of series | Bounded of Hdr.t

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, hist) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    histograms = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
  }

let incr t ?(by = 1) name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let push s v =
  if s.len = Array.length s.data then begin
    let bigger = Array.make (2 * s.len) 0.0 in
    Array.blit s.data 0 bigger 0 s.len;
    s.data <- bigger
  end;
  s.data.(s.len) <- v;
  s.len <- s.len + 1

let observe t name v =
  match Hashtbl.find_opt t.histograms name with
  | Some (Exact s) -> push s v
  | Some (Bounded h) -> Hdr.observe h v
  | None ->
    let s = { data = Array.make 16 0.0; len = 0 } in
    Hashtbl.replace t.histograms name (Exact s);
    push s v

let observe_bounded t ?alpha name v =
  match Hashtbl.find_opt t.histograms name with
  | Some (Bounded h) -> Hdr.observe h v
  | Some (Exact s) -> push s v
  | None ->
    let h = Hdr.create ?alpha () in
    Hashtbl.replace t.histograms name (Bounded h);
    Hdr.observe h v

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.replace t.gauges name (ref v)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

(* nearest-rank percentile over a sorted array *)
let percentile sorted q =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (q *. float_of_int n)) in
  sorted.(Stdlib.min (n - 1) (Stdlib.max 0 (rank - 1)))

let summarize_series s =
  if s.len = 0 then None
  else begin
    let sorted = Array.sub s.data 0 s.len in
    Array.sort Float.compare sorted;
    let sum = Array.fold_left ( +. ) 0.0 sorted in
    Some
      {
        count = s.len;
        sum;
        min = sorted.(0);
        max = sorted.(s.len - 1);
        mean = sum /. float_of_int s.len;
        p50 = percentile sorted 0.5;
        p90 = percentile sorted 0.9;
        p99 = percentile sorted 0.99;
      }
  end

let summarize_hdr h =
  if Hdr.count h = 0 then None
  else
    Some
      {
        count = Hdr.count h;
        sum = Hdr.sum h;
        min = Hdr.min_value h;
        max = Hdr.max_value h;
        mean = Hdr.sum h /. float_of_int (Hdr.count h);
        p50 = Hdr.quantile h 0.5;
        p90 = Hdr.quantile h 0.9;
        p99 = Hdr.quantile h 0.99;
      }

let summarize = function
  | Exact s -> summarize_series s
  | Bounded h -> summarize_hdr h

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> summarize h
  | None -> None

let counters t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let gauges t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let histograms t =
  Hashtbl.fold
    (fun name s acc ->
      match summarize s with Some h -> (name, h) :: acc | None -> acc)
    t.histograms []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge ~into src =
  (* name-sorted iteration so the merged registry's contents never depend
     on hashtable iteration order *)
  List.iter (fun (name, v) -> incr into ~by:v name) (counters src);
  List.iter (fun (name, v) -> set_gauge into name v) (gauges src);
  let hists =
    Hashtbl.fold (fun name s acc -> (name, s) :: acc) src.histograms []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, h) ->
      match h with
      | Exact s ->
        for i = 0 to s.len - 1 do
          observe into name s.data.(i)
        done
      | Bounded src_h -> (
        match Hashtbl.find_opt into.histograms name with
        | Some (Bounded into_h) when Hdr.alpha into_h = Hdr.alpha src_h ->
          Hdr.merge ~into:into_h src_h
        | Some _ ->
          (* kind or alpha mismatch: fold bucket representatives in *)
          Hdr.iter src_h (fun v c ->
              for _ = 1 to c do
                observe into name v
              done)
        | None ->
          let fresh = Hdr.create ~alpha:(Hdr.alpha src_h) () in
          Hdr.merge ~into:fresh src_h;
          Hashtbl.replace into.histograms name (Bounded fresh)))
    hists

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms;
  Hashtbl.reset t.gauges

let render t =
  let buf = Buffer.create 256 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "%-40s %d\n" name v))
    (counters t);
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "%-40s %g (gauge)\n" name v))
    (gauges t);
  List.iter
    (fun (name, h) ->
      Buffer.add_string buf
        (Printf.sprintf
           "%-40s count=%d sum=%g min=%g mean=%g p50=%g p90=%g p99=%g max=%g\n"
           name h.count h.sum h.min h.mean h.p50 h.p90 h.p99 h.max))
    (histograms t);
  Buffer.contents buf

(* --- OpenMetrics text exposition --- *)

(* Split a metric name into its family and an optional verbatim
   [{labels}] suffix — registry names like [shard.epoch{shard="0"}]
   carry one series per label set.  Only the family part is mangled;
   the label block must survive untouched (quotes, digits and all). *)
let om_split name =
  match String.index_opt name '{' with
  | Some i when name.[String.length name - 1] = '}' ->
    (String.sub name 0 i, String.sub name i (String.length name - i))
  | _ -> (name, "")

let om_name name =
  let mangled =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  if mangled = "" then "pcqe_unnamed" else "pcqe_" ^ mangled

let om_float f =
  if Float.is_nan f then "NaN"
  else if f = infinity then "+Inf"
  else if f = neg_infinity then "-Inf"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let to_openmetrics t =
  let buf = Buffer.create 1024 in
  (* one TYPE line per family: labelled series ([family{shard="0"}],
     [family{shard="1"}], ...) share it *)
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let type_line n kind =
    if not (Hashtbl.mem typed n) then begin
      Hashtbl.add typed n ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" n kind)
    end
  in
  List.iter
    (fun (name, v) ->
      let fam, labels = om_split name in
      let n = om_name fam in
      type_line n "counter";
      Buffer.add_string buf (Printf.sprintf "%s_total%s %d\n" n labels v))
    (counters t);
  List.iter
    (fun (name, v) ->
      let fam, labels = om_split name in
      let n = om_name fam in
      type_line n "gauge";
      Buffer.add_string buf (Printf.sprintf "%s%s %s\n" n labels (om_float v)))
    (gauges t);
  List.iter
    (fun (name, h) ->
      let n = om_name name in
      Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" n);
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s{quantile=\"%s\"} %s\n" n q (om_float v)))
        [ ("0.5", h.p50); ("0.9", h.p90); ("0.99", h.p99) ];
      Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" n (om_float h.sum));
      Buffer.add_string buf (Printf.sprintf "%s_count %d\n" n h.count))
    (histograms t);
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf
