type span = {
  name : string;
  start : float;
  elapsed : float;
  alloc : float;
  attrs : (string * string) list;
  children : span list;
}

(* an open span under construction; children and attrs accumulate reversed *)
type frame = {
  f_name : string;
  f_start : float;
  f_alloc : float; (* Gc.allocated_bytes at open *)
  mutable f_attrs : (string * string) list;
  mutable f_children : span list;
}

type t = {
  clock : Clock.t;
  fresh : unit -> Clock.t; (* clock factory for forked subtracers *)
  mutable stack : frame list; (* innermost first *)
  mutable rev_roots : span list;
}

let create ?clock ?fresh () =
  let fresh =
    match (fresh, clock) with
    | Some f, _ -> f
    | None, Some c -> fun () -> c
    | None, None -> fun () -> Clock.counter ()
  in
  let clock = match clock with Some c -> c | None -> Clock.counter () in
  { clock; fresh; stack = []; rev_roots = [] }

let add_attr t key value =
  match t.stack with
  | [] -> ()
  | f :: _ -> f.f_attrs <- (key, value) :: f.f_attrs

let close t frame =
  let stop = t.clock () in
  let s =
    {
      name = frame.f_name;
      start = frame.f_start;
      elapsed = stop -. frame.f_start;
      alloc = Gc.allocated_bytes () -. frame.f_alloc;
      attrs = List.rev frame.f_attrs;
      children = List.rev frame.f_children;
    }
  in
  (match t.stack with
  | f :: rest when f == frame -> t.stack <- rest
  | _ -> ());
  match t.stack with
  | [] -> t.rev_roots <- s :: t.rev_roots
  | parent :: _ -> parent.f_children <- s :: parent.f_children

let span t ?(attrs = []) name f =
  let frame =
    {
      f_name = name;
      f_start = t.clock ();
      f_alloc = Gc.allocated_bytes ();
      f_attrs = List.rev attrs;
      f_children = [];
    }
  in
  t.stack <- frame :: t.stack;
  Fun.protect ~finally:(fun () -> close t frame) f

let roots t = List.rev t.rev_roots

let reset t = t.rev_roots <- []

(* ------------------------------------------------------------------ *)
(* Cross-task propagation.  A [ctx] captures the innermost open frame:
   that frame is the parent every forked task's spans will be stitched
   under.  Forked subtracers get their own clock from [fresh] (a new
   deterministic counter per task by default), so a task's subtree is a
   pure function of the task body — independent of which domain ran it
   and of how tasks interleaved. *)

type ctx = {
  c_parent : frame option; (* None: graft as new roots *)
  c_trace : t;
  c_fresh : unit -> Clock.t;
}

let fork t =
  {
    c_parent = (match t.stack with [] -> None | f :: _ -> Some f);
    c_trace = t;
    c_fresh = t.fresh;
  }

let branch ctx = create ~clock:(ctx.c_fresh ()) ~fresh:ctx.c_fresh ()

let stitch ctx spans =
  match ctx.c_parent with
  | Some f -> List.iter (fun s -> f.f_children <- s :: f.f_children) spans
  | None ->
    List.iter (fun s -> ctx.c_trace.rev_roots <- s :: ctx.c_trace.rev_roots) spans

let default_time e = Printf.sprintf "%.3f ms" (1000.0 *. e)

let render ?(time = default_time) t =
  let buf = Buffer.create 256 in
  let rec go indent s =
    let label = indent ^ s.name in
    Buffer.add_string buf (Printf.sprintf "%-36s %12s" label (time s.elapsed));
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %s=%s" k v))
      s.attrs;
    Buffer.add_char buf '\n';
    List.iter (go (indent ^ "  ")) s.children
  in
  List.iter (go "") (roots t);
  Buffer.contents buf
