(** Named counters, gauges and histograms.

    A registry is a mutable bag of metrics identified by dotted names
    (["engine.queries"], ["heuristic.h3_prunes"], ["dnc.group_size"]).
    Counters are monotone integers; gauges are last-write-wins floats
    (cache sizes, epochs); histograms record observations and report
    order statistics on demand (nearest-rank percentiles).

    Histograms come in two flavours behind the same name space:
    {!observe} keeps every observation exactly (right for bounded bench
    and test series), while {!observe_bounded} sketches into a
    fixed-memory log-bucketed {!Hdr} histogram with a documented
    relative error bound — the serving paths use it so a long-running
    process never grows its registry without bound.  A name's flavour is
    fixed by whichever call touches it first.

    Recording is cheap — one hashtable probe plus an integer add or an
    array push — so solvers can bump counters inside their inner loops.

    {2 Concurrency: one writer per registry}

    Registries are deliberately unsynchronized (no per-record locking on
    the hot path), so the rule is {e single writer per registry}: a
    registry is only ever recorded into from one domain at a time.
    Parallel code gives each task its own private registry and aggregates
    after the join with {!merge} — the divide-and-conquer solver's
    per-group registries are the canonical example.  Reading ({!counter},
    {!histogram}, {!render}, …) is only safe once the writers have been
    joined. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at 0 first. *)

val observe : t -> string -> float -> unit
(** Record one observation into the named histogram (exact flavour when
    the name is new). *)

val observe_bounded : t -> ?alpha:float -> string -> float -> unit
(** Record one observation into the named histogram, creating it as a
    bounded {!Hdr} sketch (relative quantile error [alpha], default 1%)
    when the name is new.  Fixed memory per name regardless of the
    observation count. *)

val set_gauge : t -> string -> float -> unit
(** Set the named gauge (last write wins). *)

val counter : t -> string -> int
(** Current value of the counter; [0] when it was never incremented. *)

val gauge : t -> string -> float option
(** Current value of the gauge; [None] when it was never set. *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram : t -> string -> histogram option
(** Summary of the named histogram; [None] when it has no observations.
    For bounded histograms, [count]/[sum]/[min]/[max]/[mean] are exact
    and the percentiles carry the {!Hdr} error bound. *)

val percentile : float array -> float -> float
(** [percentile sorted q] is the nearest-rank [q]-percentile ([q] in
    [0,1]) of a sorted non-empty array (exposed for tests). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val gauges : t -> (string * float) list
(** All gauges, sorted by name. *)

val histograms : t -> (string * histogram) list
(** All non-empty histograms, sorted by name. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into]: counters add, gauges
    overwrite, histogram observations append (per histogram, in
    recording order; bounded sketches of equal [alpha] merge
    bucket-wise).  Metric names are visited in sorted order, so merging
    the same registries in the same sequence always produces the same
    aggregate — merge forked registries back in task order after a
    parallel join and the combined registry is deterministic.  [src] is
    left untouched. *)

val reset : t -> unit

val render : t -> string
(** Human-readable dump: counters first, then gauges, then histogram
    summaries. *)

val to_openmetrics : t -> string
(** OpenMetrics text exposition: every metric name is mangled to
    [pcqe_<name with non-alphanumerics as '_'>]; counters expose
    [<name>_total], gauges a bare sample, histograms a [summary] with
    [quantile] labels (0.5/0.9/0.99) plus [_sum] and [_count]; the
    output ends with [# EOF] as the standard requires. *)
