(** Named counters and histograms.

    A registry is a mutable bag of metrics identified by dotted names
    (["engine.queries"], ["heuristic.h3_prunes"], ["dnc.group_size"]).
    Counters are monotone integers; histograms record every observation
    and report order statistics on demand (nearest-rank percentiles).

    Recording is cheap — one hashtable probe plus an integer add or an
    array push — so solvers can bump counters inside their inner loops.

    {2 Concurrency: one writer per registry}

    Registries are deliberately unsynchronized (no per-record locking on
    the hot path), so the rule is {e single writer per registry}: a
    registry is only ever recorded into from one domain at a time.
    Parallel code gives each task its own private registry and aggregates
    after the join with {!merge} — the divide-and-conquer solver's
    per-group registries are the canonical example.  Reading ({!counter},
    {!histogram}, {!render}, …) is only safe once the writers have been
    joined. *)

type t

val create : unit -> t

val incr : t -> ?by:int -> string -> unit
(** Add [by] (default 1) to the named counter, creating it at 0 first. *)

val observe : t -> string -> float -> unit
(** Record one observation into the named histogram. *)

val counter : t -> string -> int
(** Current value of the counter; [0] when it was never incremented. *)

type histogram = {
  count : int;
  sum : float;
  min : float;
  max : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val histogram : t -> string -> histogram option
(** Summary of the named histogram; [None] when it has no observations. *)

val percentile : float array -> float -> float
(** [percentile sorted q] is the nearest-rank [q]-percentile ([q] in
    [0,1]) of a sorted non-empty array (exposed for tests). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val histograms : t -> (string * histogram) list
(** All non-empty histograms, sorted by name. *)

val merge : into:t -> t -> unit
(** [merge ~into src] folds [src] into [into]: counters add, histogram
    observations append (per histogram, in recording order).  Metric
    names are visited in sorted order, so merging the same registries in
    the same sequence always produces the same aggregate — merge forked
    registries back in task order after a parallel join and the combined
    registry is deterministic.  [src] is left untouched. *)

val reset : t -> unit

val render : t -> string
(** Human-readable dump: counters first, then histogram summaries. *)
