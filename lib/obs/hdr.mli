(** Bounded log-bucketed histogram with a fixed memory footprint.

    An HDR/DDSketch-style sketch: observations land in logarithmically
    spaced buckets chosen so that any quantile read back is within a
    relative error of [alpha] of the exact quantile, for values inside
    the trackable range [[1e-9, 1e12]] (values at or below the lower
    bound are pooled and report the exact minimum; values above the
    upper bound clamp into the last bucket).

    {2 Error bound}

    With [gamma = (1 + alpha) / (1 - alpha)], bucket [k] covers
    [(gamma^(k-1), gamma^k]] and reports the representative
    [gamma^k * (1 - alpha)], which is within [alpha] relative error of
    every value in the bucket.  Since the sketch's nearest-rank quantile
    lands in the bucket containing the exact nearest-rank sample,
    [|quantile t q - exact_q| <= alpha * exact_q] for in-range streams.
    [count], [sum], [min_value] and [max_value] are exact.

    {2 Memory}

    The bucket array size is fixed at creation ([bucket_count], about
    4840 slots at the default [alpha = 0.01]) and never grows, no matter
    how many observations are recorded — this is what qualifies it for
    long-running serving paths where the exact series in {!Metrics}
    would grow without bound. *)

type t

val create : ?alpha:float -> unit -> t
(** Fresh empty sketch.  [alpha] (default [0.01], i.e. 1% relative
    error) must lie in [(0, 1)]. *)

val observe : t -> float -> unit

val count : t -> int
val sum : t -> float
val min_value : t -> float
val max_value : t -> float

val quantile : t -> float -> float
(** Nearest-rank quantile ([q] in [0,1]), subject to the error bound
    above; [nan] when empty. *)

val alpha : t -> float

val bucket_count : t -> int
(** Size of the fixed bucket array — constant for a given [alpha]. *)

val iter : t -> (float -> int -> unit) -> unit
(** [iter t f] calls [f representative count] for every non-empty
    bucket, in increasing value order. *)

val merge : into:t -> t -> unit
(** Add [src]'s buckets into [into].  Raises [Invalid_argument] when the
    two sketches were built with different [alpha]. *)
