(** End-to-end observability: tracing + metrics behind one handle.

    The engine, the solvers, the CLI and the benchmarks all take an
    optional [Obs.t].  [None] means observability is fully disabled: the
    option-taking helpers below ({!span}, {!incr}, {!observe},
    {!add_attr}, …) are no-ops that allocate nothing, so the instrumented
    code pays a single [match] per call site when tracing is off.

    Clocks are pluggable ({!Clock}): {!deterministic} (the default) never
    reads wall time, so enabling observability cannot make a test run
    nondeterministic; {!wall} is for the CLI, REPL and benchmarks.

    {2 Cross-task propagation}

    Work fanned out on an [Exec] pool must not record into the shared
    tracer (single writer).  The orchestrator calls {!fork} while the
    span that owns the parallel section is open, wraps each task body in
    {!task} (which records into a private per-task subtracer), and after
    the join calls {!stitch} with the per-task span lists {e in task
    order} — the completed task spans then appear as children of the
    forked span.  Subtracers draw fresh deterministic counter clocks by
    default (each task subtree is a pure function of the task body, so
    the stitched tree is identical at any jobs level), or share the wall
    clock when the handle was built with one. *)

module Clock = Clock
module Trace = Trace
module Metrics = Metrics
module Hdr = Hdr
module Profile = Profile
module Sink = Sink

type t = { trace : Trace.t; metrics : Metrics.t; clock : Clock.t }

val create : ?clock:Clock.t -> unit -> t
(** Fresh tracer + registry sharing [clock] (default: deterministic
    counter). *)

val deterministic : unit -> t
(** [create ()] with a fresh counter clock — reproducible runs. *)

val wall : unit -> t
(** [create ~clock:Clock.wall ()] — real timings for humans. *)

(* Option-taking helpers: the instrumented code threads a [t option] and
   never branches itself. *)

val span : t option -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
val add_attr : t option -> string -> string -> unit
val incr : t option -> ?by:int -> string -> unit
val observe : t option -> string -> float -> unit

val observe_bounded : t option -> ?alpha:float -> string -> float -> unit
(** Like {!observe} but creates the histogram as a fixed-memory bounded
    sketch ({!Hdr}) — use on serving paths that run indefinitely. *)

val set_gauge : t option -> string -> float -> unit

val now : t option -> float
(** One reading of the handle's clock ([0.0] when disabled) — for
    recording durations that span more than one span. *)

type task_ctx
(** Capture of the innermost open span plus the clock factory, taken on
    the orchestrating domain with {!fork}. *)

val fork : t option -> task_ctx option
(** Capture the current innermost open span as the parent for task
    spans.  Call while the owning span (e.g. ["parallel"], ["batch"])
    is open. *)

val task :
  task_ctx option ->
  ?attrs:(string * string) list ->
  string ->
  (Trace.t option -> 'a) ->
  'a * Trace.span list
(** [task ctx name f] runs [f] inside a span named [name] on a private
    per-task subtracer (passed to [f] so the body can record child
    spans), and returns the body's value together with the completed
    task spans — hand those to {!stitch} after the join.  With [ctx =
    None] it is a no-op wrapper: [(f None, [])].  Safe to call from any
    domain. *)

val stitch : task_ctx option -> Trace.span list array -> unit
(** Graft the per-task span lists under the forked span, in array
    order.  Call from the orchestrating domain, after the tasks have
    joined and before the forked span closes. *)

val drain : t -> Sink.t -> unit
(** Stream completed spans and all metrics into the sink, then close it. *)

val report : t -> string
(** Span tree ({!Trace.render}) followed by the metrics dump
    ({!Metrics.render}). *)
