(** End-to-end observability: tracing + metrics behind one handle.

    The engine, the solvers, the CLI and the benchmarks all take an
    optional [Obs.t].  [None] means observability is fully disabled: the
    option-taking helpers below ({!span}, {!incr}, {!observe},
    {!add_attr}) are no-ops that allocate nothing, so the instrumented
    code pays a single [match] per call site when tracing is off.

    Clocks are pluggable ({!Clock}): {!deterministic} (the default) never
    reads wall time, so enabling observability cannot make a test run
    nondeterministic; {!wall} is for the CLI, REPL and benchmarks. *)

module Clock = Clock
module Trace = Trace
module Metrics = Metrics
module Sink = Sink

type t = { trace : Trace.t; metrics : Metrics.t }

val create : ?clock:Clock.t -> unit -> t
(** Fresh tracer + registry sharing [clock] (default: deterministic
    counter). *)

val deterministic : unit -> t
(** [create ()] with a fresh counter clock — reproducible runs. *)

val wall : unit -> t
(** [create ~clock:Clock.wall ()] — real timings for humans. *)

(* Option-taking helpers: the instrumented code threads a [t option] and
   never branches itself. *)

val span : t option -> ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
val add_attr : t option -> string -> string -> unit
val incr : t option -> ?by:int -> string -> unit
val observe : t option -> string -> float -> unit

val drain : t -> Sink.t -> unit
(** Stream completed spans and all metrics into the sink, then close it. *)

val report : t -> string
(** Span tree ({!Trace.render}) followed by the metrics dump
    ({!Metrics.render}). *)
