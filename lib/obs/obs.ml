module Clock = Clock
module Trace = Trace
module Metrics = Metrics
module Sink = Sink

type t = { trace : Trace.t; metrics : Metrics.t }

let create ?clock () =
  let clock = match clock with Some c -> c | None -> Clock.counter () in
  { trace = Trace.create ~clock (); metrics = Metrics.create () }

let deterministic () = create ()

let wall () = create ~clock:Clock.wall ()

let span t ?attrs name f =
  match t with None -> f () | Some o -> Trace.span o.trace ?attrs name f

let add_attr t key value =
  match t with None -> () | Some o -> Trace.add_attr o.trace key value

let incr t ?by name =
  match t with None -> () | Some o -> Metrics.incr o.metrics ?by name

let observe t name v =
  match t with None -> () | Some o -> Metrics.observe o.metrics name v

let drain t sink = Sink.drain ~trace:t.trace ~metrics:t.metrics sink

let report t =
  let spans = Trace.render t.trace in
  let metrics = Metrics.render t.metrics in
  if metrics = "" then spans else spans ^ "\n" ^ metrics
