module Clock = Clock
module Trace = Trace
module Metrics = Metrics
module Hdr = Hdr
module Profile = Profile
module Sink = Sink

type t = { trace : Trace.t; metrics : Metrics.t; clock : Clock.t }

let create ?clock () =
  match clock with
  | Some c ->
    (* explicit clock (wall time, usually): forked task subtracers share
       it, so task spans carry real timings too *)
    {
      trace = Trace.create ~clock:c ~fresh:(fun () -> c) ();
      metrics = Metrics.create ();
      clock = c;
    }
  | None ->
    (* deterministic default: the main tracer gets one counter and every
       forked task gets a fresh one, so a task's subtree is a pure
       function of the task body regardless of scheduling *)
    let c = Clock.counter () in
    {
      trace = Trace.create ~clock:c ~fresh:(fun () -> Clock.counter ()) ();
      metrics = Metrics.create ();
      clock = c;
    }

let deterministic () = create ()

let wall () = create ~clock:Clock.wall ()

let span t ?attrs name f =
  match t with None -> f () | Some o -> Trace.span o.trace ?attrs name f

let add_attr t key value =
  match t with None -> () | Some o -> Trace.add_attr o.trace key value

let incr t ?by name =
  match t with None -> () | Some o -> Metrics.incr o.metrics ?by name

let observe t name v =
  match t with None -> () | Some o -> Metrics.observe o.metrics name v

let observe_bounded t ?alpha name v =
  match t with
  | None -> ()
  | Some o -> Metrics.observe_bounded o.metrics ?alpha name v

let set_gauge t name v =
  match t with None -> () | Some o -> Metrics.set_gauge o.metrics name v

let now t = match t with None -> 0.0 | Some o -> o.clock ()

(* --- cross-task propagation --- *)

type task_ctx = Trace.ctx

let fork t = match t with None -> None | Some o -> Some (Trace.fork o.trace)

let task ctx ?attrs name f =
  match ctx with
  | None -> (f None, [])
  | Some c ->
    let sub = Trace.branch c in
    let v = Trace.span sub ?attrs name (fun () -> f (Some sub)) in
    (v, Trace.roots sub)

let stitch ctx groups =
  match ctx with
  | None -> ()
  | Some c -> Array.iter (fun spans -> Trace.stitch c spans) groups

let drain t sink = Sink.drain ~trace:t.trace ~metrics:t.metrics sink

let report t =
  let spans = Trace.render t.trace in
  let metrics = Metrics.render t.metrics in
  if metrics = "" then spans else spans ^ "\n" ^ metrics
