(* DNF with absorption over monotone formulas: terms are sets of tids. *)

let rec dnf = function
  | Formula.True -> Some [ Tid.Set.empty ]
  | Formula.False -> Some []
  | Formula.Var v -> Some [ Tid.Set.singleton v ]
  | Formula.Not _ -> None
  | Formula.Or fs ->
    List.fold_left
      (fun acc f ->
        match (acc, dnf f) with
        | Some terms, Some more -> Some (terms @ more)
        | _ -> None)
      (Some []) fs
  | Formula.And fs ->
    List.fold_left
      (fun acc f ->
        match (acc, dnf f) with
        | Some terms, Some more ->
          (* cross product of the term sets *)
          Some
            (List.concat_map
               (fun t -> List.map (fun m -> Tid.Set.union t m) more)
               terms)
        | _ -> None)
      (Some [ Tid.Set.empty ]) fs

(* keep only minimal terms (absorption) *)
let minimize terms =
  let minimal t =
    not
      (List.exists
         (fun other -> (not (Tid.Set.equal other t)) && Tid.Set.subset other t)
         terms)
  in
  List.filter minimal terms
  |> List.sort_uniq (fun a b ->
         let c = Int.compare (Tid.Set.cardinal a) (Tid.Set.cardinal b) in
         if c <> 0 then c else Tid.Set.compare a b)

let witnesses f =
  if not (Formula.is_monotone f) then
    Error "witnesses are only defined for negation-free lineage"
  else
    match dnf f with
    | Some terms -> Ok (minimize terms)
    | None -> Error "witnesses are only defined for negation-free lineage"

let top_witnesses ?(k = 5) p f =
  match witnesses f with
  | Error _ -> []
  | Ok terms ->
    let scored =
      List.map
        (fun t -> (t, Tid.Set.fold (fun tid acc -> acc *. p tid) t 1.0))
        terms
    in
    (* bounded-heap selection: same output as a stable descending sort
       followed by take-k, without sorting every term *)
    Topk.by_score ~k snd scored

let influence p f =
  Tid.Set.elements (Formula.vars f)
  |> List.map (fun tid -> (tid, Prob.derivative p f tid))
  |> List.stable_sort (fun (_, a) (_, b) -> Float.compare b a)

let to_string ?tier p f =
  let buf = Buffer.create 256 in
  (match tier with
  | Some t -> Buffer.add_string buf (Printf.sprintf "  confidence tier: %s\n" t)
  | None -> ());
  (match top_witnesses p f with
  | [] ->
    Buffer.add_string buf
      "  witnesses: (not available: lineage contains negation)\n"
  | ws ->
    Buffer.add_string buf "  witnesses (minimal sufficient tuple sets):\n";
    List.iter
      (fun (t, prob) ->
        Buffer.add_string buf
          (Printf.sprintf "    {%s}  p=%.4f\n"
             (String.concat ", " (List.map Tid.to_string (Tid.Set.elements t)))
             prob))
      ws);
  Buffer.add_string buf "  influence (dP/dp per base tuple):\n";
  List.iter
    (fun (tid, d) ->
      Buffer.add_string buf
        (Printf.sprintf "    %-16s %+.4f\n" (Tid.to_string tid) d))
    (influence p f);
  Buffer.contents buf
