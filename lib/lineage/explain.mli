(** Explanations of derived results: why-provenance and influence.

    Two complementary views of a result's lineage:

    - {!witnesses}: the {e minimal witnesses} (prime implicants of a
      monotone lineage formula) — the minimal sets of base tuples whose
      joint presence suffices for the result to exist.  This is classic
      why-provenance; a user asking "why is this row here?" gets one line
      per witness.
    - {!influence}: the Birnbaum importance of each base tuple
      ({!Prob.derivative}) — how much one unit of confidence on that tuple
      moves the result's confidence.  This ranks where quality-improvement
      money is best spent and is exactly the quantity the greedy gain
      normalizes by cost. *)

val witnesses : Formula.t -> (Tid.Set.t list, string) result
(** [witnesses f] enumerates the minimal witnesses of a {e monotone} [f],
    sorted by size then lexicographically.  Errors on non-monotone
    formulas (negation has no witness semantics) with a descriptive
    message.  Worst case exponential in the formula size — lineage of a
    single result row is small in practice. *)

val top_witnesses :
  ?k:int -> (Tid.t -> float) -> Formula.t -> (Tid.Set.t * float) list
(** [top_witnesses ~k p f] ranks witnesses by the probability that the
    whole witness is present ([Π p(t)]) and keeps the best [k]
    (default 5).  Empty on non-monotone formulas. *)

val influence : (Tid.t -> float) -> Formula.t -> (Tid.t * float) list
(** [influence p f] is every variable of [f] with its Birnbaum importance
    [∂P(f)/∂p(t)], sorted by decreasing importance.  Works for any
    formula. *)

val to_string : ?tier:string -> (Tid.t -> float) -> Formula.t -> string
(** Multi-line rendering: the witnesses (when monotone) and the top
    influences — what a CLI "explain" command prints per row.  [?tier]
    (e.g. ["var"], ["read_once"], ["circuit"], ["shannon"]) prepends a
    [confidence tier:] line naming the evaluator that priced the row. *)
