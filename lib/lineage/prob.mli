(** Confidence (probability) computation for lineage formulas.

    The model is tuple-level independence: base tuple [t] is present with
    probability [p t], independently of all others.  The confidence of a
    query result is the probability that its lineage formula is satisfied.

    Three evaluators are provided:

    - {!read_once}: linear time, exact, valid only for read-once formulas;
    - {!exact}: always exact; decomposes into independent subformulas and
      falls back to Shannon expansion on shared variables (exponential in
      the number of shared variables in the worst case — the general
      problem is #P-hard, cf. Dalvi–Suciu);
    - {!monte_carlo}: unbiased sampling estimator for formulas too entangled
      for {!exact}.

    {!confidence} picks the cheapest exact strategy automatically. *)

val read_once : (Tid.t -> float) -> Formula.t -> float
(** [read_once p f] evaluates [f] bottom-up with
    [P(And fs) = Π P(f)] and [P(Or fs) = 1 - Π (1 - P(f))].
    Exact iff [f] is read-once (no variable repeated); callers must ensure
    this (see {!Formula.is_read_once}). *)

val exact : (Tid.t -> float) -> Formula.t -> float
(** [exact p f] computes the exact probability of [f].  Uses independent
    decomposition where sibling subformulas share no variables, and Shannon
    expansion on the most-shared variable otherwise, with memoization. *)

val shannon_cost_estimate : Formula.t -> int
(** [shannon_cost_estimate f] is a crude upper bound on the number of
    Shannon expansions {!exact} may perform ([2^s] capped at [max_int/2],
    where [s] is the number of variables occurring more than once).  Useful
    to decide between {!exact} and {!monte_carlo}. *)

val monte_carlo :
  ?pool:Exec.Pool.t ->
  ?fork:Obs.task_ctx ->
  ?chunk:int ->
  Prng.Splitmix.t ->
  samples:int ->
  (Tid.t -> float) ->
  Formula.t ->
  float
(** [monte_carlo rng ~samples p f] estimates the probability of [f] by
    drawing [samples] independent worlds.  Standard error is at most
    [0.5 / sqrt samples].

    Samples are drawn in chunks of [chunk] (default 4096) worlds, each
    chunk from its own generator split off [rng] up front — with [pool],
    chunks are evaluated across the pool's domains, and because the
    per-chunk streams are fixed before forking, the estimate is {e
    identical} at every parallelism level (including no pool at all) for
    a given seed and [chunk].  [p] is called concurrently under [pool]
    and must be pure.

    [fork] (an {!Obs.fork} capture taken while the caller's span is
    open) makes each chunk record an ["mc-chunk"] task span; the spans
    are stitched under the captured span in chunk order after the join,
    so the trace tree is identical at any parallelism level. *)

val derivative : (Tid.t -> float) -> Formula.t -> Tid.t -> float
(** [derivative p f v] is the partial derivative of the confidence of [f]
    with respect to [p v].  By Shannon expansion
    [P(f) = p_v * P(f|v=1) + (1 - p_v) * P(f|v=0)], the derivative is
    [P(f|v=1) - P(f|v=0)] — the classic Birnbaum importance of [v].
    Always in [\[-1, 1\]]; 0 when [v] does not occur in [f]; non-negative
    for monotone [f]. *)

val confidence : (Tid.t -> float) -> Formula.t -> float
(** [confidence p f] computes the exact confidence of [f], using the linear
    read-once evaluator when applicable and {!exact} otherwise. *)
