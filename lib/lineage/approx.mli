(** Graceful degradation ladder for confidence computation.

    Exact confidence is #P-hard in general: {!Prob.exact} is exponential
    in entangled lineage and an OBDD build can blow past any size cap.
    For a bounded-latency deployment the engine needs a confidence
    answer it can {e act on} even when the exact tiers are too
    expensive — and the compliance contract (release iff confidence
    strictly above β) must never be weakened by the approximation.

    The ladder tries, in order:

    + {b read-once} — linear, exact ({!Prob.read_once});
    + {b exact decomposition} — {!Prob.exact}, taken only when
      {!Prob.shannon_cost_estimate} is small;
    + {b OBDD} — {!Bdd.of_formula} under [exact_node_cap]
      ({!Bdd.Size_cap_exceeded} aborts the build early);
    + {b Monte-Carlo} — an (ε, δ) estimate: with [samples_for mc] worlds
      a Hoeffding bound puts the true confidence inside
      [estimate ± mc.eps] with probability at least [1 - mc.delta].

    The first three tiers return [Exact]; the Monte-Carlo tier returns
    an [Interval] — the caller decides {e conservatively} (fail-closed):
    release only when the whole interval clears β, withhold when it
    straddles.  If even sampling fails, [Failed] is returned and the
    caller must withhold. *)

type estimate =
  | Exact of float  (** an exact tier answered *)
  | Interval of { lo : float; hi : float; estimate : float; samples : int }
      (** Monte-Carlo: true confidence in [\[lo, hi\]] with probability
          [>= 1 - delta]; [estimate] is the point estimate. *)
  | Failed of string
      (** no tier could answer (e.g. the sampler itself raised); the
          caller must treat the tuple as not releasable *)

type mc = {
  eps : float;  (** interval half-width, in (0, 1) *)
  delta : float;  (** failure probability, in (0, 1) *)
  seed : int;  (** base seed; each formula derives its own stream *)
  samples_cap : int;  (** hard ceiling on the sample count *)
}

val default_mc : mc
(** [eps = 0.02], [delta = 1e-4], [seed = 0], [samples_cap = 2_000_000]:
    ~12.4k samples per formula. *)

val samples_for : mc -> int
(** Hoeffding sample size [⌈ln (2/δ) / (2 ε²)⌉], clamped to
    [\[1, samples_cap\]]. *)

val exact_threshold : int
(** {!Prob.exact} is attempted only when
    [Prob.shannon_cost_estimate f <= exact_threshold]. *)

type tier = Var | Read_once | Shannon | Circuit | Obdd | Monte_carlo
    (** the rung that actually answered, in ladder order.  [Var] is the
        single-variable short circuit (a direct base-confidence lookup,
        taken only when {!Circuit.enabled}); [Circuit] is reported by
        callers that answered from a compiled {!Circuit} instead of
        running a rung — {!confidence} itself never selects it. *)

val tier_name : tier -> string
(** Stable lower-snake name of a rung ([var], [read_once], [shannon],
    [circuit], [obdd], [monte_carlo]) — used as the [ladder.<tier>]
    counter suffix by callers that account rung usage. *)

val confidence :
  ?pool:Exec.Pool.t ->
  ?fork:Obs.task_ctx ->
  ?on_tier:(tier -> unit) ->
  ?exact_node_cap:int ->
  ?mc:mc ->
  (Tid.t -> float) ->
  Formula.t ->
  estimate
(** [confidence p f] runs the ladder.  When [f] is a single [Var] and
    {!Circuit.enabled}[ ()], the [Var] short circuit answers with the
    base confidence directly (bitwise the value the read-once rung
    would compute) before any ladder setup.  [exact_node_cap] (default
    [20_000]) bounds the OBDD tier's node allocations; [mc] (default
    {!default_mc}) parameterizes the sampling tier.  The Monte-Carlo
    seed is derived from [mc.seed] and {!Formula.hash}[ f], so the
    estimate for a given formula is reproducible and independent of
    evaluation order and of [pool].  Never raises: any exception from
    the sampling tier is converted to [Failed].

    [on_tier] is called exactly once, with the rung selected to answer,
    {e before} that rung runs (so a rung that subsequently raises still
    reports — the [Failed] path counts under the rung that failed).
    Observation-only: callers use it to bump [ladder.*] counters.

    [fork] is passed through to {!Prob.monte_carlo} so sampling chunks
    appear as task spans under the caller's captured span. *)

val releasable : beta:float -> estimate -> [ `Release | `Withhold | `Ambiguous ]
(** The fail-closed decision rule: [`Release] iff the estimate proves
    confidence strictly above [beta] ([Exact c] with [c > beta], or an
    interval with [lo > beta]); [`Ambiguous] when an interval straddles
    [beta] ([lo <= beta < hi] — the tuple is withheld and should be
    counted separately); [`Withhold] otherwise (provably at-or-below
    [beta], or [Failed]). *)
