type t =
  | True
  | False
  | Var of Tid.t
  | Not of t
  | And of t list
  | Or of t list

let tru = True
let fls = False
let var v = Var v

let rec compare a b =
  let rank = function
    | True -> 0
    | False -> 1
    | Var _ -> 2
    | Not _ -> 3
    | And _ -> 4
    | Or _ -> 5
  in
  match (a, b) with
  | True, True | False, False -> 0
  | Var x, Var y -> Tid.compare x y
  | Not x, Not y -> compare x y
  | And xs, And ys | Or xs, Or ys -> List.compare compare xs ys
  | _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

(* Structural hash, consistent with [equal]: equal formulas hash equally.
   Unlike the polymorphic [Hashtbl.hash] it folds over the *whole* tree, so
   deep formulas that differ only far from the root still get distinct
   hashes — the property the hash-consing dedup in [Optimize.Problem]
   relies on to bucket structurally equal lineage together. *)
let hash f =
  let rec go acc = function
    | True -> (acc * 31) + 1
    | False -> (acc * 31) + 2
    | Var v -> (((acc * 31) + 3) * 31) + Tid.hash v
    | Not g -> go ((acc * 31) + 5) g
    | And fs -> List.fold_left go ((acc * 31) + 7) fs
    | Or fs -> List.fold_left go ((acc * 31) + 11) fs
  in
  go 0 f land max_int

(* Deduplicate a sorted-insertion list while preserving first-occurrence
   order.  Short lists (the common constructor case) use a direct scan;
   long ones — wide disjunctions such as a projection group's merged
   lineage — bucket by {!hash} so the pass stays linear instead of
   quadratic in the width. *)
let dedup fs =
  let rec short n = function _ :: rest when n > 0 -> short (n - 1) rest | rest -> rest = [] in
  if short 16 fs then
    let rec go seen = function
      | [] -> List.rev seen
      | f :: rest ->
        if List.exists (equal f) seen then go seen rest
        else go (f :: seen) rest
    in
    go [] fs
  else
    let seen : (int, t list) Hashtbl.t = Hashtbl.create 64 in
    List.filter
      (fun f ->
        let h = hash f in
        let bucket = try Hashtbl.find seen h with Not_found -> [] in
        if List.exists (equal f) bucket then false
        else begin
          Hashtbl.replace seen h (f :: bucket);
          true
        end)
      fs

let conj fs =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | True :: rest -> flatten acc rest
    | False :: _ -> None
    | And gs :: rest -> flatten acc (gs @ rest)
    | f :: rest -> flatten (f :: acc) rest
  in
  match flatten [] fs with
  | None -> False
  | Some fs -> (
    match dedup fs with
    | [] -> True
    | [ f ] -> f
    | fs -> And fs)

let disj fs =
  let rec flatten acc = function
    | [] -> Some (List.rev acc)
    | False :: rest -> flatten acc rest
    | True :: _ -> None
    | Or gs :: rest -> flatten acc (gs @ rest)
    | f :: rest -> flatten (f :: acc) rest
  in
  match flatten [] fs with
  | None -> True
  | Some fs -> (
    match dedup fs with
    | [] -> False
    | [ f ] -> f
    | fs -> Or fs)

let neg = function
  | True -> False
  | False -> True
  | Not f -> f
  | f -> Not f

let rec vars = function
  | True | False -> Tid.Set.empty
  | Var v -> Tid.Set.singleton v
  | Not f -> vars f
  | And fs | Or fs ->
    List.fold_left (fun acc f -> Tid.Set.union acc (vars f)) Tid.Set.empty fs

let var_count f = Tid.Set.cardinal (vars f)

let rec size = function
  | True | False | Var _ -> 1
  | Not f -> 1 + size f
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs

let rec depth = function
  | True | False | Var _ -> 1
  | Not f -> 1 + depth f
  | And fs | Or fs -> 1 + List.fold_left (fun acc f -> max acc (depth f)) 0 fs

let is_read_once f =
  (* count total variable occurrences vs distinct variables *)
  let rec occurrences = function
    | True | False -> 0
    | Var _ -> 1
    | Not f -> occurrences f
    | And fs | Or fs -> List.fold_left (fun acc f -> acc + occurrences f) 0 fs
  in
  occurrences f = var_count f

let rec is_monotone = function
  | True | False | Var _ -> true
  | Not _ -> false
  | And fs | Or fs -> List.for_all is_monotone fs

let rec eval assignment = function
  | True -> true
  | False -> false
  | Var v -> assignment v
  | Not f -> not (eval assignment f)
  | And fs -> List.for_all (eval assignment) fs
  | Or fs -> List.exists (eval assignment) fs

let rec restrict v b = function
  | True -> True
  | False -> False
  | Var x -> if Tid.equal x v then (if b then True else False) else Var x
  | Not f -> neg (restrict v b f)
  | And fs -> conj (List.map (restrict v b) fs)
  | Or fs -> disj (List.map (restrict v b) fs)

let rec simplify = function
  | True -> True
  | False -> False
  | Var v -> Var v
  | Not f -> neg (simplify f)
  | And fs ->
    let fs = List.map simplify fs in
    let f = conj fs in
    absorb_and f
  | Or fs ->
    let fs = List.map simplify fs in
    let f = disj fs in
    absorb_or f

(* One-level absorption: x ∧ (x ∨ y) = x. *)
and absorb_and f =
  match f with
  | And fs ->
    let atoms = List.filter (function Or _ -> false | _ -> true) fs in
    let keep = function
      | Or gs -> not (List.exists (fun a -> List.exists (equal a) gs) atoms)
      | _ -> true
    in
    conj (List.filter keep fs)
  | f -> f

(* One-level absorption: x ∨ (x ∧ y) = x. *)
and absorb_or f =
  match f with
  | Or fs ->
    let atoms = List.filter (function And _ -> false | _ -> true) fs in
    let keep = function
      | And gs -> not (List.exists (fun a -> List.exists (equal a) gs) atoms)
      | _ -> true
    in
    disj (List.filter keep fs)
  | f -> f

let rec map_vars g = function
  | True -> True
  | False -> False
  | Var v -> Var (g v)
  | Not f -> neg (map_vars g f)
  | And fs -> conj (List.map (map_vars g) fs)
  | Or fs -> disj (List.map (map_vars g) fs)

let to_string f =
  let buf = Buffer.create 64 in
  (* prec: Or = 1, And = 2, Not = 3, atom = 4 *)
  let rec go prec f =
    match f with
    | True -> Buffer.add_string buf "T"
    | False -> Buffer.add_string buf "F"
    | Var v -> Buffer.add_string buf (Tid.to_string v)
    | Not g ->
      Buffer.add_char buf '!';
      go 3 g
    | And fs -> paren prec 2 " & " fs
    | Or fs -> paren prec 1 " | " fs
  and paren prec level sep fs =
    let need = prec > level in
    if need then Buffer.add_char buf '(';
    List.iteri
      (fun i g ->
        if i > 0 then Buffer.add_string buf sep;
        go (level + 1) g)
      fs;
    if need then Buffer.add_char buf ')'
  in
  go 0 f;
  Buffer.contents buf

let pp ppf f = Format.pp_print_string ppf (to_string f)

module Hashed = struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end

module Table = Hashtbl.Make (Hashed)
