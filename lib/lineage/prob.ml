let rec read_once p = function
  | Formula.True -> 1.0
  | Formula.False -> 0.0
  | Formula.Var v -> p v
  | Formula.Not f -> 1.0 -. read_once p f
  | Formula.And fs ->
    List.fold_left (fun acc f -> acc *. read_once p f) 1.0 fs
  | Formula.Or fs ->
    1.0 -. List.fold_left (fun acc f -> acc *. (1.0 -. read_once p f)) 1.0 fs

(* Variables occurring in more than one sibling subformula.  When there are
   none, siblings are independent and probabilities compose directly.
   [vars_of] is the caller's (memoized) variable-set function. *)
let shared_vars vars_of fs =
  let seen = ref Tid.Set.empty and shared = ref Tid.Set.empty in
  List.iter
    (fun f ->
      let vs = vars_of f in
      shared := Tid.Set.union !shared (Tid.Set.inter !seen vs);
      seen := Tid.Set.union !seen vs)
    fs;
  !shared

(* Pick the variable occurring in the largest number of sibling subformulas:
   expanding on it maximally decouples the rest. *)
let most_shared vars_of fs shared =
  let best = ref None and best_count = ref 0 in
  Tid.Set.iter
    (fun v ->
      let count =
        List.fold_left
          (fun acc f -> if Tid.Set.mem v (vars_of f) then acc + 1 else acc)
          0 fs
      in
      if count > !best_count then begin
        best := Some v;
        best_count := count
      end)
    shared;
  match !best with Some v -> v | None -> assert false

let exact p f =
  let memo : (Formula.t, float) Hashtbl.t = Hashtbl.create 64 in
  (* Variable sets are needed at every decomposition step for every sibling;
     recomputing them bottom-up each time is quadratic in the tree.  One
     memo table per [exact] call caches them per subformula — restriction
     rebuilds syntactically equal subtrees, so structural keying shares the
     sets across Shannon branches too. *)
  let vars_memo : (Formula.t, Tid.Set.t) Hashtbl.t = Hashtbl.create 64 in
  let rec vars_of f =
    match f with
    | Formula.True | Formula.False -> Tid.Set.empty
    | Formula.Var v -> Tid.Set.singleton v
    | Formula.Not g -> vars_of g
    | Formula.And fs | Formula.Or fs -> (
      match Hashtbl.find_opt vars_memo f with
      | Some s -> s
      | None ->
        let s =
          List.fold_left
            (fun acc g -> Tid.Set.union acc (vars_of g))
            Tid.Set.empty fs
        in
        Hashtbl.add vars_memo f s;
        s)
  in
  let rec go f =
    match f with
    | Formula.True -> 1.0
    | Formula.False -> 0.0
    | Formula.Var v -> p v
    | Formula.Not g -> 1.0 -. go g
    | Formula.And fs | Formula.Or fs -> (
      match Hashtbl.find_opt memo f with
      | Some r -> r
      | None ->
        let r = go_nary f fs in
        Hashtbl.add memo f r;
        r)
  and go_nary f fs =
    let shared = shared_vars vars_of fs in
    if Tid.Set.is_empty shared then
      match f with
      | Formula.And _ -> List.fold_left (fun acc g -> acc *. go g) 1.0 fs
      | Formula.Or _ ->
        1.0 -. List.fold_left (fun acc g -> acc *. (1.0 -. go g)) 1.0 fs
      | _ -> assert false
    else begin
      let v = most_shared vars_of fs shared in
      let pv = p v in
      let f1 = Formula.restrict v true f and f0 = Formula.restrict v false f in
      (pv *. go f1) +. ((1.0 -. pv) *. go f0)
    end
  in
  go f

let shannon_cost_estimate f =
  let occ = Tid.Table.create 16 in
  let rec count = function
    | Formula.True | Formula.False -> ()
    | Formula.Var v ->
      Tid.Table.replace occ v
        (1 + Option.value ~default:0 (Tid.Table.find_opt occ v))
    | Formula.Not g -> count g
    | Formula.And fs | Formula.Or fs -> List.iter count fs
  in
  count f;
  let repeated = Tid.Table.fold (fun _ n acc -> if n > 1 then acc + 1 else acc) occ 0 in
  if repeated >= 60 then max_int / 2 else 1 lsl repeated

(* Sampling is chunked: the caller's generator is split into one child
   stream per fixed-size chunk up front, and both the sequential and the
   pooled path consume exactly those streams — so the estimate is a pure
   function of (seed, samples, chunk), never of the jobs count. *)
let monte_carlo ?pool ?fork ?(chunk = 4096) rng ~samples p f =
  if samples <= 0 then invalid_arg "Prob.monte_carlo: samples must be positive";
  if chunk <= 0 then invalid_arg "Prob.monte_carlo: chunk must be positive";
  let vars = Tid.Set.elements (Formula.vars f) in
  let num_chunks = (samples + chunk - 1) / chunk in
  let rngs = Prng.Splitmix.split_n rng num_chunks in
  let run_chunk ci =
    (* chaos-testable injection point: models the sampler being cut off *)
    Resilience.Fault.hit Resilience.Fault.site_prob_mc;
    let rng = rngs.(ci) in
    let n = min chunk (samples - (ci * chunk)) in
    let world = Tid.Table.create (List.length vars) in
    let hits = ref 0 in
    for _ = 1 to n do
      List.iter
        (fun v -> Tid.Table.replace world v (Prng.Splitmix.coin rng (p v)))
        vars;
      if Formula.eval (fun v -> Tid.Table.find world v) f then incr hits
    done;
    !hits
  in
  (* each chunk runs inside a per-task span when the caller forked a trace
     context; span lists come back with the chunk results and are stitched
     in chunk order, so the tree never depends on scheduling *)
  let traced ci =
    Obs.task fork
      ~attrs:[ ("chunk", string_of_int ci) ]
      "mc-chunk"
      (fun _ -> run_chunk ci)
  in
  let outs =
    match pool with
    | None -> Array.init num_chunks traced
    | Some pool ->
      Exec.Pool.map_array ~chunk:1 pool traced (Array.init num_chunks Fun.id)
  in
  Obs.stitch fork (Array.map snd outs);
  let hits = Array.fold_left (fun acc (h, _) -> acc + h) 0 outs in
  float_of_int hits /. float_of_int samples

let derivative p f v =
  if not (Tid.Set.mem v (Formula.vars f)) then 0.0
  else
    let f1 = Formula.restrict v true f and f0 = Formula.restrict v false f in
    exact p f1 -. exact p f0

let confidence p f =
  if Formula.is_read_once f then read_once p f else exact p f
