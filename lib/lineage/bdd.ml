type t =
  | Leaf of bool
  | Node of { id : int; level : int; var : Tid.t; lo : t; hi : t }

type manager = {
  order : Tid.t -> Tid.t -> int;
  mutable next_id : int;
  levels : int Tid.Table.t; (* interned variable -> level *)
  mutable level_vars : Tid.t array; (* level -> variable *)
  unique : (int * int * int, t) Hashtbl.t; (* (level, lo id, hi id) -> node *)
  and_cache : (int * int, t) Hashtbl.t;
  or_cache : (int * int, t) Hashtbl.t;
  not_cache : (int, t) Hashtbl.t;
}

let manager ?(order = Tid.compare) () =
  {
    order;
    next_id = 2;
    levels = Tid.Table.create 64;
    level_vars = [||];
    unique = Hashtbl.create 256;
    and_cache = Hashtbl.create 256;
    or_cache = Hashtbl.create 256;
    not_cache = Hashtbl.create 64;
  }

let zero _ = Leaf false
let one _ = Leaf true

let node_id = function
  | Leaf false -> 0
  | Leaf true -> 1
  | Node { id; _ } -> id

let node_level = function Leaf _ -> max_int | Node { level; _ } -> level

(* Intern a variable, keeping [level_vars] sorted by [order].  Levels of
   previously interned variables must stay stable, so we only assign fresh
   levels at the end; if the new variable sorts before an existing one we
   still append — the resulting order is "first come, ordered among new
   arrivals".  For a fixed formula, callers intern variables in sorted
   order via [of_formula], giving the canonical order. *)
let intern m v =
  match Tid.Table.find_opt m.levels v with
  | Some l -> l
  | None ->
    let l = Array.length m.level_vars in
    Tid.Table.add m.levels v l;
    m.level_vars <- Array.append m.level_vars [| v |];
    l

let mk m level var lo hi =
  if node_id lo = node_id hi then lo
  else begin
    let key = (level, node_id lo, node_id hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      let n = Node { id = m.next_id; level; var; lo; hi } in
      m.next_id <- m.next_id + 1;
      Hashtbl.add m.unique key n;
      n
  end

let var m v =
  let level = intern m v in
  mk m level v (Leaf false) (Leaf true)

let rec bnot m b =
  match b with
  | Leaf x -> Leaf (not x)
  | Node { id; level; var; lo; hi } -> (
    match Hashtbl.find_opt m.not_cache id with
    | Some r -> r
    | None ->
      let r = mk m level var (bnot m lo) (bnot m hi) in
      Hashtbl.add m.not_cache id r;
      r)

let rec apply m op cache unit_a absorb a b =
  match (a, b) with
  | Leaf x, Leaf y -> Leaf (op x y)
  | Leaf x, other | other, Leaf x ->
    if x = unit_a then other else Leaf absorb
  | _ ->
    let ka = node_id a and kb = node_id b in
    let key = if ka <= kb then (ka, kb) else (kb, ka) in
    (match Hashtbl.find_opt cache key with
    | Some r -> r
    | None ->
      let la = node_level a and lb = node_level b in
      let r =
        if la = lb then
          match (a, b) with
          | Node na, Node nb ->
            mk m la na.var
              (apply m op cache unit_a absorb na.lo nb.lo)
              (apply m op cache unit_a absorb na.hi nb.hi)
          | _ -> assert false
        else if la < lb then
          match a with
          | Node na ->
            mk m la na.var
              (apply m op cache unit_a absorb na.lo b)
              (apply m op cache unit_a absorb na.hi b)
          | _ -> assert false
        else
          match b with
          | Node nb ->
            mk m lb nb.var
              (apply m op cache unit_a absorb a nb.lo)
              (apply m op cache unit_a absorb a nb.hi)
          | _ -> assert false
      in
      Hashtbl.add cache key r;
      r)

let band m a b = apply m ( && ) m.and_cache true false a b
let bor m a b = apply m ( || ) m.or_cache false true a b

exception Size_cap_exceeded

let of_formula ?size_cap m f =
  (* Intern all variables in sorted order first so the manager's variable
     order matches [m.order] for this formula. *)
  let vs = Tid.Set.elements (Formula.vars f) in
  let vs = List.sort m.order vs in
  List.iter (fun v -> ignore (intern m v)) vs;
  (* With [size_cap], abort as soon as the construction has allocated that
     many fresh nodes: a pathological formula whose OBDD blows up is
     abandoned mid-build instead of paying the full exponential cost and
     only then being discarded by the caller's size check.  The budget is
     on *allocated* nodes (including intermediates later garbage), so it is
     checked between combining steps, where [next_id] is current. *)
  let start_id = m.next_id in
  let check b =
    (match size_cap with
    | Some cap when m.next_id - start_id > cap -> raise Size_cap_exceeded
    | _ -> ());
    b
  in
  let rec go = function
    | Formula.True -> Leaf true
    | Formula.False -> Leaf false
    | Formula.Var v -> var m v
    | Formula.Not g -> check (bnot m (go g))
    | Formula.And fs ->
      List.fold_left (fun acc g -> check (band m acc (go g))) (Leaf true) fs
    | Formula.Or fs ->
      List.fold_left (fun acc g -> check (bor m acc (go g))) (Leaf false) fs
  in
  go f

let equal a b = node_id a = node_id b
let is_zero b = node_id b = 0
let is_one b = node_id b = 1

let size root =
  let seen = Hashtbl.create 64 in
  let rec go = function
    | Leaf _ -> ()
    | Node { id; lo; hi; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        go lo;
        go hi
      end
  in
  go root;
  Hashtbl.length seen

let prob _m p root =
  let memo = Hashtbl.create 64 in
  let rec go = function
    | Leaf true -> 1.0
    | Leaf false -> 0.0
    | Node { id; var; lo; hi; _ } -> (
      match Hashtbl.find_opt memo id with
      | Some r -> r
      | None ->
        let pv = p var in
        let r = (pv *. go hi) +. ((1.0 -. pv) *. go lo) in
        Hashtbl.add memo id r;
        r)
  in
  go root

let rec eval assignment = function
  | Leaf b -> b
  | Node { var; lo; hi; _ } ->
    if assignment var then eval assignment hi else eval assignment lo

let sat_count m root ~vars =
  let n = Tid.Set.cardinal vars in
  (* probability under the uniform distribution times 2^n *)
  let p _ = 0.5 in
  prob m p root *. (2.0 ** float_of_int n)
