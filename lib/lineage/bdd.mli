(** Reduced ordered binary decision diagrams over base tuples.

    A hash-consed OBDD package used as the heavy-duty exact confidence
    evaluator for non-read-once lineage (e.g. self-joins).  Once a formula
    is compiled, probability evaluation is linear in the number of BDD
    nodes, so the same lineage can be re-evaluated cheaply under many
    different confidence assignments — exactly the access pattern of the
    strategy-finding algorithms, which repeatedly perturb one base tuple's
    confidence. *)

type manager
(** Node store: unique table plus operation caches.  All nodes combined in
    an operation must come from the same manager. *)

type t
(** A BDD node handle (valid within its manager). *)

val manager : ?order:(Tid.t -> Tid.t -> int) -> unit -> manager
(** [manager ()] creates a fresh manager.  [order] fixes the variable order
    (default {!Tid.compare}); variables encountered first in operations are
    interned on demand respecting that order. *)

val zero : manager -> t
val one : manager -> t
val var : manager -> Tid.t -> t

val bnot : manager -> t -> t
val band : manager -> t -> t -> t
val bor : manager -> t -> t -> t

exception Size_cap_exceeded
(** Raised by {!of_formula} when a [size_cap] budget runs out. *)

val of_formula : ?size_cap:int -> manager -> Formula.t -> t
(** [of_formula m f] compiles [f] bottom-up.

    [size_cap] bounds the number of fresh nodes the construction may
    allocate in [m]; when exceeded, {!Size_cap_exceeded} is raised
    immediately instead of completing an exponentially large build the
    caller would only discard.  The budget counts {e allocations} during
    this call (including intermediate nodes that end up unreachable from
    the final root), so callers wanting a final {!size} of at most [n]
    should pass a small multiple of [n] as headroom.

    Boundary contract (pinned by [test_bdd]): the cap is {e inclusive}.
    The budget window opens {e after} the formula's variables are
    interned (variable nodes never count), and the check runs between
    combining steps, raising only when strictly {e more} than [size_cap]
    fresh nodes have been allocated — a build that needs exactly
    [size_cap] allocations succeeds, and [~size_cap:0] still compiles
    constants and bare literals.  Consequently, if a build succeeds with
    [~size_cap:c], it succeeds with every cap [>= c] and produces the
    same BDD; if it raises at [c], it raises at every cap [< c].  On
    [Size_cap_exceeded] the manager remains usable: already-interned
    nodes are valid, but the partial allocations of the aborted build
    are {e not} reclaimed. *)

val equal : t -> t -> bool
(** Constant time thanks to hash-consing: semantic equivalence of BDDs
    built in the same manager coincides with physical identity. *)

val is_zero : t -> bool
val is_one : t -> bool

val size : t -> int
(** Number of distinct internal nodes reachable from the root. *)

val prob : manager -> (Tid.t -> float) -> t -> float
(** [prob m p b] is the probability that [b] evaluates to true when each
    variable [v] is independently true with probability [p v].  Linear in
    {!size}.  The result is memoized per call, not across calls (the
    assignment changes between calls). *)

val eval : (Tid.t -> bool) -> t -> bool
(** [eval assignment b] follows one path from the root. *)

val sat_count : manager -> t -> vars:Tid.Set.t -> float
(** [sat_count m b ~vars] is the number of satisfying assignments of [b]
    over the variable set [vars] (which must contain all variables of [b]).
    Returned as a float to tolerate > 62-variable spaces. *)
