type node =
  | NTrue
  | NFalse
  | NLeaf of Tid.t
  | NNeg of int
  | NAnd of int array
  | NOr of int array
  | NDecide of Tid.t * int * int (* pivot, v=true child, v=false child *)

type t = { nodes : node array; root : int }

exception Node_cap_exceeded

let default_node_cap = 50_000

(* --- kill switch ------------------------------------------------------ *)

let forced : bool option ref = ref None
let force b = forced := b

let enabled () =
  match !forced with
  | Some b -> b
  | None -> (
    match Sys.getenv_opt "PCQE_CIRCUITS" with
    | Some ("0" | "off" | "false" | "no") -> false
    | Some _ | None -> true)

(* --- compilation ------------------------------------------------------ *)

(* Sibling-independence test and pivot choice, duplicated verbatim from
   [Prob] (they are not exposed there).  Keeping them byte-identical is
   load-bearing: the circuit must take the same decomposition at every
   step [Prob.exact] would, or the float results drift. *)
let shared_vars vars_of fs =
  let seen = ref Tid.Set.empty and shared = ref Tid.Set.empty in
  List.iter
    (fun f ->
      let vs = vars_of f in
      shared := Tid.Set.union !shared (Tid.Set.inter !seen vs);
      seen := Tid.Set.union !seen vs)
    fs;
  !shared

let most_shared vars_of fs shared =
  let best = ref None and best_count = ref 0 in
  Tid.Set.iter
    (fun v ->
      let count =
        List.fold_left
          (fun acc f -> if Tid.Set.mem v (vars_of f) then acc + 1 else acc)
          0 fs
      in
      if count > !best_count then begin
        best := Some v;
        best_count := count
      end)
    shared;
  match !best with Some v -> v | None -> assert false

let compile ?(node_cap = default_node_cap) f =
  let nodes = ref [] and count = ref 0 in
  let add node =
    if !count >= node_cap then raise Node_cap_exceeded;
    nodes := node :: !nodes;
    let id = !count in
    incr count;
    id
  in
  (* structural memo over And/Or subformulas, exactly like [Prob.exact]'s
     result memo: a repeated subformula becomes one shared node, so its
     value is computed once per eval — same sharing, same floats *)
  let memo : int Formula.Table.t = Formula.Table.create 64 in
  let vars_memo : Tid.Set.t Formula.Table.t = Formula.Table.create 64 in
  let rec vars_of f =
    match f with
    | Formula.True | Formula.False -> Tid.Set.empty
    | Formula.Var v -> Tid.Set.singleton v
    | Formula.Not g -> vars_of g
    | Formula.And fs | Formula.Or fs -> (
      match Formula.Table.find_opt vars_memo f with
      | Some s -> s
      | None ->
        let s =
          List.fold_left
            (fun acc g -> Tid.Set.union acc (vars_of g))
            Tid.Set.empty fs
        in
        Formula.Table.add vars_memo f s;
        s)
  in
  let rec go f =
    match f with
    | Formula.True -> add NTrue
    | Formula.False -> add NFalse
    | Formula.Var v -> add (NLeaf v)
    | Formula.Not g ->
      let c = go g in
      add (NNeg c)
    | Formula.And fs | Formula.Or fs -> (
      match Formula.Table.find_opt memo f with
      | Some id -> id
      | None ->
        let id = go_nary f fs in
        Formula.Table.add memo f id;
        id)
  and go_nary f fs =
    let shared = shared_vars vars_of fs in
    if Tid.Set.is_empty shared then begin
      (* decomposable: children are variable-disjoint, probabilities
         compose as products (complemented products for Or) *)
      let kids = Array.of_list (List.map go fs) in
      match f with
      | Formula.And _ -> add (NAnd kids)
      | Formula.Or _ -> add (NOr kids)
      | _ -> assert false
    end
    else begin
      (* deterministic decision: the two cofactors are mutually exclusive
         conditioned on the pivot, so the weighted sum is exact *)
      let v = most_shared vars_of fs shared in
      let f1 = Formula.restrict v true f and f0 = Formula.restrict v false f in
      let c1 = go f1 in
      let c0 = go f0 in
      add (NDecide (v, c1, c0))
    end
  in
  let root = go f in
  { nodes = Array.of_list (List.rev !nodes); root }

let compile_opt ?node_cap f =
  match compile ?node_cap f with
  | c -> Some c
  | exception Node_cap_exceeded -> None

(* --- evaluation ------------------------------------------------------- *)

(* One bottom-up pass; children always precede parents in [nodes] (they
   are appended post-order).  The per-node float expressions are copied
   from [Prob.read_once]/[Prob.exact] so results are bitwise equal. *)
let eval t p =
  let v = Array.make (Array.length t.nodes) 0.0 in
  Array.iteri
    (fun i node ->
      v.(i) <-
        (match node with
        | NTrue -> 1.0
        | NFalse -> 0.0
        | NLeaf x -> p x
        | NNeg c -> 1.0 -. v.(c)
        | NAnd kids -> Array.fold_left (fun acc c -> acc *. v.(c)) 1.0 kids
        | NOr kids ->
          1.0 -. Array.fold_left (fun acc c -> acc *. (1.0 -. v.(c))) 1.0 kids
        | NDecide (x, c1, c0) ->
          let pv = p x in
          (pv *. v.(c1)) +. ((1.0 -. pv) *. v.(c0))))
    t.nodes;
  v.(t.root)

let size t = Array.length t.nodes

let decisions t =
  Array.fold_left
    (fun acc n -> match n with NDecide _ -> acc + 1 | _ -> acc)
    0 t.nodes
