(** Deterministic decomposable circuits for lineage confidence.

    A lineage formula is compiled {e once} into a DAG whose internal nodes
    are either independent products ([And]/[Or] over variable-disjoint
    children) or deterministic Shannon decisions on a shared variable —
    the d-DNNF shape of Monet–Olteanu / Koch–Olteanu.  Evaluation is a
    single bottom-up pass, linear in circuit size, and can be repeated
    under new base confidences without touching the formula again.

    The compiler mirrors {!Prob.exact}'s recursion step for step: the same
    independence test over sibling variable sets, the same most-shared
    pivot choice, the same {!Formula.restrict} cofactors, and the same
    structural memoization of repeated subformulas.  Because {!eval}
    performs the identical float operations in the identical order,
    [eval (compile f) p] is {e bitwise equal} to [Prob.exact p f] (and
    hence to [Prob.confidence p f], whose read-once fast path computes
    the same products).  That equality is what lets the serving layer swap
    circuits in for the ladder without changing a single released or
    withheld decision.

    Compilation explores the same expansion tree {!Prob.exact} would, so
    it is not cheaper than one exact evaluation — the win is amortized:
    every re-evaluation after the first (confidence epochs, solver
    probes) costs one linear pass instead of a fresh exponential-in-
    the-worst-case expansion. *)

type t

exception Node_cap_exceeded
(** Raised by {!compile} when the circuit would exceed the node cap —
    callers fall back to the existing Approx ladder. *)

val default_node_cap : int
(** Default bound on circuit nodes (50_000). *)

val compile : ?node_cap:int -> Formula.t -> t
(** [compile f] builds the circuit for [f].
    @raise Node_cap_exceeded if more than [node_cap] nodes are needed. *)

val compile_opt : ?node_cap:int -> Formula.t -> t option
(** Like {!compile} but [None] instead of raising on cap overflow. *)

val eval : t -> (Tid.t -> float) -> float
(** [eval c p] evaluates [c] bottom-up under base confidences [p].
    Linear in {!size}; allocates its scratch per call, so concurrent
    evaluations of the same circuit (solver probes under a pool) are
    safe. *)

val size : t -> int
(** Number of nodes in the circuit. *)

val decisions : t -> int
(** Number of Shannon decision nodes — 0 means the formula decomposed
    into pure independent products (it was effectively read-once). *)

val enabled : unit -> bool
(** Whether the circuit/safe-plan fast path is on.  Defaults to on;
    set [PCQE_CIRCUITS=0] (or [off]/[false]/[no]) to disable, restoring
    the pre-circuit ladder behavior exactly.  {!force} overrides. *)

val force : bool option -> unit
(** [force (Some b)] overrides {!enabled} to [b] regardless of the
    environment; [force None] restores environment control.  For tests
    and benchmarks. *)
