type estimate =
  | Exact of float
  | Interval of { lo : float; hi : float; estimate : float; samples : int }
  | Failed of string

type mc = { eps : float; delta : float; seed : int; samples_cap : int }

let default_mc = { eps = 0.02; delta = 1e-4; seed = 0; samples_cap = 2_000_000 }

let samples_for mc =
  if not (mc.eps > 0.0 && mc.eps < 1.0) then
    invalid_arg (Printf.sprintf "Approx.samples_for: eps %g outside (0,1)" mc.eps);
  if not (mc.delta > 0.0 && mc.delta < 1.0) then
    invalid_arg
      (Printf.sprintf "Approx.samples_for: delta %g outside (0,1)" mc.delta);
  let n = ceil (log (2.0 /. mc.delta) /. (2.0 *. mc.eps *. mc.eps)) in
  max 1 (min mc.samples_cap (int_of_float n))

let exact_threshold = 4096

type tier = Var | Read_once | Shannon | Circuit | Obdd | Monte_carlo

let tier_name = function
  | Var -> "var"
  | Read_once -> "read_once"
  | Shannon -> "shannon"
  | Circuit -> "circuit"
  | Obdd -> "obdd"
  | Monte_carlo -> "monte_carlo"

let confidence ?pool ?fork ?(on_tier = fun (_ : tier) -> ()) ?(exact_node_cap = 20_000)
    ?(mc = default_mc) p f =
  match f with
  | Formula.Var v when Circuit.enabled () ->
    (* single-tuple lineage: the confidence IS the base confidence — no
       ladder setup, no formula walk.  Gated with the circuit fast path
       so PCQE_CIRCUITS=0 restores the read-once rung for these. *)
    on_tier Var;
    Exact (p v)
  | _ ->
  if Formula.is_read_once f then begin
    on_tier Read_once;
    Exact (Prob.read_once p f)
  end
  else if Prob.shannon_cost_estimate f <= exact_threshold then begin
    on_tier Shannon;
    Exact (Prob.exact p f)
  end
  else begin
    let m = Bdd.manager () in
    match Bdd.of_formula ~size_cap:exact_node_cap m f with
    | b ->
      on_tier Obdd;
      Exact (Bdd.prob m p b)
    | exception Bdd.Size_cap_exceeded -> (
      on_tier Monte_carlo;
      let samples = samples_for mc in
      (* per-formula stream: reproducible, order- and pool-independent *)
      let rng = Prng.Splitmix.of_int (mc.seed lxor Formula.hash f) in
      match Prob.monte_carlo ?pool ?fork rng ~samples p f with
      | est ->
        Interval
          {
            lo = Float.max 0.0 (est -. mc.eps);
            hi = Float.min 1.0 (est +. mc.eps);
            estimate = est;
            samples;
          }
      | exception e ->
        (* fail closed: an unanswerable confidence is a withheld tuple,
           never a released one *)
        Failed (Printexc.to_string e))
  end

let releasable ~beta = function
  | Exact c -> if c > beta then `Release else `Withhold
  | Interval { lo; hi; _ } ->
    if lo > beta then `Release
    else if hi > beta then `Ambiguous
    else `Withhold
  | Failed _ -> `Withhold
