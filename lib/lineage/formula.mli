(** Boolean lineage formulas over base tuples.

    A query result's lineage records which base tuples it was derived from
    and how: a join contributes a conjunction, duplicate elimination and
    union contribute disjunctions, and set difference contributes a negated
    disjunction (Trio-style lineage, cf. Sarma–Theobald–Widom).

    Under the tuple-independence model used by the paper, the confidence of
    a result equals the probability that its lineage formula is true when
    each base tuple [t] is independently present with probability equal to
    its confidence [p_t].  See {!Prob} for evaluation. *)

type t =
  | True
  | False
  | Var of Tid.t
  | Not of t
  | And of t list
  | Or of t list

val tru : t
val fls : t
val var : Tid.t -> t

val conj : t list -> t
(** [conj fs] builds a conjunction with local simplification: flattens
    nested [And]s, drops [True], short-circuits on [False], deduplicates
    syntactically equal conjuncts, and collapses singleton lists. *)

val disj : t list -> t
(** [disj fs] is the dual of {!conj}. *)

val neg : t -> t
(** [neg f] with double-negation elimination and constant folding. *)

val compare : t -> t -> int
val equal : t -> t -> bool

val hash : t -> int
(** Structural hash consistent with {!equal} ([equal a b] implies
    [hash a = hash b]).  Folds over the whole tree — linear in {!size} —
    unlike the depth-bounded polymorphic [Hashtbl.hash]. *)

val vars : t -> Tid.Set.t
(** [vars f] is the set of base tuples mentioned by [f]. *)

val var_count : t -> int
(** [var_count f] is [Tid.Set.cardinal (vars f)]. *)

val size : t -> int
(** Number of nodes in the syntax tree. *)

val depth : t -> int
(** Height of the syntax tree; [True]/[False]/[Var _] have depth 1. *)

val is_read_once : t -> bool
(** [is_read_once f] is [true] when no variable occurs twice in the syntax
    tree.  Read-once formulas over independent variables admit linear-time
    exact probability computation. *)

val is_monotone : t -> bool
(** [true] when [f] contains no negation. *)

val eval : (Tid.t -> bool) -> t -> bool
(** [eval assignment f] evaluates [f] under a truth assignment. *)

val restrict : Tid.t -> bool -> t -> t
(** [restrict v b f] substitutes the constant [b] for variable [v] and
    simplifies (Shannon cofactor). *)

val simplify : t -> t
(** [simplify f] re-applies the smart constructors bottom-up: flattening,
    constant folding, deduplication, absorption of [x] in [x ∨ (x ∧ y)]
    patterns at one level.  Semantics-preserving. *)

val map_vars : (Tid.t -> Tid.t) -> t -> t
(** [map_vars g f] renames every variable through [g]. *)

val to_string : t -> string
(** Human-readable infix form, e.g. ["(Proposal#2 | Proposal#3) & Info#1"]. *)

val pp : Format.formatter -> t -> unit

module Table : Hashtbl.S with type key = t
(** Hash tables keyed by formula {e structure} ({!equal} + {!hash}) — the
    building block for hash-consing structurally equal lineage (self-joins
    and grouped outputs produce many duplicates). *)
