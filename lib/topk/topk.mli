(** Bounded-heap top-K selection.

    [by_score ~k score xs] is observably identical to sorting [xs] by
    score descending with a stable sort and keeping the first [k]
    elements — equal scores preserve input order — but runs in
    O(n log k) time and O(k) space instead of sorting all [n].  The
    engine uses it wherever result rows are ranked by confidence
    (lineage witnesses, the CLI's [--top], the columnar bench panel). *)

val by_score : k:int -> ('a -> float) -> 'a list -> 'a list
(** [by_score ~k score xs] is the [k] highest-scoring elements of [xs]
    in score-descending order, ties broken by input position
    (earlier first).  [k <= 0] is the empty list; [k >= length xs]
    is a full descending stable sort.  NaN scores rank lowest, the
    ordering [Float.compare] gives them. *)

val by_score_arr : k:int -> ('a -> float) -> 'a array -> 'a list
(** Array input variant of {!by_score}. *)
