(* Bounded-heap selection.  The heap is a binary min-heap of the k best
   elements seen so far, ordered so its root is the *worst* of the kept
   set: an incoming element either beats the root (replace + sift down)
   or is discarded in O(1).  "Worse" means lower score, or equal score
   and later input position — exactly the total order a stable
   descending sort induces, so the final extraction reproduces
   stable-sort-then-take-k output bit for bit. *)

(* a is strictly worse than b *)
let worse (sa, ia) (sb, ib) =
  let c = Float.compare sa sb in
  c < 0 || (c = 0 && ia > ib)

let by_score_arr ~k score xs =
  let n = Array.length xs in
  if k <= 0 || n = 0 then []
  else begin
    let cap = min k n in
    (* parallel arrays: scores/indices drive the ordering, items ride *)
    let hs = Array.make cap 0.0 in
    let hi = Array.make cap 0 in
    let hx = Array.make cap xs.(0) in
    let size = ref 0 in
    let swap a b =
      let s = hs.(a) and i = hi.(a) and x = hx.(a) in
      hs.(a) <- hs.(b);
      hi.(a) <- hi.(b);
      hx.(a) <- hx.(b);
      hs.(b) <- s;
      hi.(b) <- i;
      hx.(b) <- x
    in
    let rec sift_up j =
      if j > 0 then begin
        let parent = (j - 1) / 2 in
        if worse (hs.(j), hi.(j)) (hs.(parent), hi.(parent)) then begin
          swap j parent;
          sift_up parent
        end
      end
    in
    let rec sift_down j =
      let l = (2 * j) + 1 and r = (2 * j) + 2 in
      let worst = ref j in
      if l < !size && worse (hs.(l), hi.(l)) (hs.(!worst), hi.(!worst)) then
        worst := l;
      if r < !size && worse (hs.(r), hi.(r)) (hs.(!worst), hi.(!worst)) then
        worst := r;
      if !worst <> j then begin
        swap j !worst;
        sift_down !worst
      end
    in
    for i = 0 to n - 1 do
      let s = score xs.(i) in
      if !size < cap then begin
        hs.(!size) <- s;
        hi.(!size) <- i;
        hx.(!size) <- xs.(i);
        incr size;
        sift_up (!size - 1)
      end
      else if worse (hs.(0), hi.(0)) (s, i) then begin
        hs.(0) <- s;
        hi.(0) <- i;
        hx.(0) <- xs.(i);
        sift_down 0
      end
    done;
    (* pop worst-first into the tail of the output *)
    let out = ref [] in
    while !size > 0 do
      out := hx.(0) :: !out;
      decr size;
      if !size > 0 then begin
        swap 0 !size;
        sift_down 0
      end
    done;
    !out
  end

let by_score ~k score xs = by_score_arr ~k score (Array.of_list xs)
