(** Deterministic SplitMix64 pseudo-random number generator.

    All synthetic workloads and benchmarks in this repository are driven by
    this generator so that every experiment is exactly reproducible from a
    seed, independently of the OCaml runtime's [Random] state.

    The generator is the SplitMix64 algorithm of Steele, Lea and Flood
    (OOPSLA 2014): a 64-bit counter advanced by an odd constant, with a
    64-bit finalizer.  It has a full 2^64 period and passes BigCrush. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator seeded with [seed]. *)

val of_int : int -> t
(** [of_int seed] is [create (Int64.of_int seed)]. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val split_n : t -> int -> t array
(** [split_n t k] advances [t] [k] times and returns [k] mutually
    independent child generators, in split order — the seeding primitive
    for deterministic parallel chunking: split one stream per chunk
    up front, and the per-chunk draws no longer depend on how chunks are
    scheduled across domains.  [k] must be non-negative. *)

val next_int64 : t -> int64
(** [next_int64 t] returns the next raw 64-bit output. *)

val bits30 : t -> int
(** [bits30 t] returns 30 uniformly random bits as a non-negative [int]. *)

val int : t -> int -> int
(** [int t bound] returns a uniform integer in [\[0, bound)].  [bound] must
    be positive.  Uses rejection sampling, so the result is exactly
    uniform. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] returns a uniform integer in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] returns a uniform float in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] returns a uniform float in [\[lo, hi)]. *)

val bool : t -> bool
(** [bool t] returns a uniform boolean. *)

val coin : t -> float -> bool
(** [coin t p] returns [true] with probability [p] (clamped to [\[0,1\]]). *)

val choice : t -> 'a array -> 'a
(** [choice t arr] returns a uniformly chosen element of [arr].
    @raise Invalid_argument if [arr] is empty. *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t arr] applies a uniform Fisher–Yates shuffle. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] returns [k] distinct integers drawn
    uniformly from [\[0, n)], in random order.  Requires [0 <= k <= n].
    Runs in O(n) time and space. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** [gaussian t ~mu ~sigma] draws from a normal distribution using the
    Box–Muller transform. *)

val exponential : t -> rate:float -> float
(** [exponential t ~rate] draws from an exponential distribution with the
    given rate parameter (mean [1 /. rate]).  [rate] must be positive. *)
