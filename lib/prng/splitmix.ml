type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let of_int seed = create (Int64.of_int seed)

let copy t = { state = t.state }

(* The 64-bit finalizer from SplitMix64 (variant of Stafford's Mix13). *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next_int64 t in
  create (mix64 seed)

let split_n t k =
  if k < 0 then invalid_arg "Splitmix.split_n: negative count";
  if k = 0 then [||]
  else begin
    (* explicit loop: Array.init's evaluation order is unspecified, and
       each split advances [t] *)
    let arr = Array.make k t in
    for i = 0 to k - 1 do
      arr.(i) <- split t
    done;
    arr
  end

let bits30 t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 34)

let int t bound =
  if bound <= 0 then invalid_arg "Splitmix.int: bound must be positive";
  if bound land (bound - 1) = 0 then
    (* power of two: mask is exactly uniform *)
    bits30 t land (bound - 1)
  else begin
    (* rejection sampling over 30-bit outputs *)
    let rec loop () =
      let r = bits30 t in
      let v = r mod bound in
      if r - v > 0x3FFFFFFF - bound + 1 then loop () else v
    in
    loop ()
  end

let int_in t lo hi =
  if lo > hi then invalid_arg "Splitmix.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits into [0, 1), scaled. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let coin t p =
  if p <= 0.0 then false
  else if p >= 1.0 then true
  else float t 1.0 < p

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Splitmix.choice: empty array";
  arr.(int t (Array.length arr))

let shuffle_in_place t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k n =
  if k < 0 || k > n then
    invalid_arg "Splitmix.sample_without_replacement: need 0 <= k <= n";
  let pool = Array.init n (fun i -> i) in
  (* partial Fisher–Yates: only the first k slots need to be fixed *)
  for i = 0 to k - 1 do
    let j = int_in t i (n - 1) in
    let tmp = pool.(i) in
    pool.(i) <- pool.(j);
    pool.(j) <- tmp
  done;
  Array.sub pool 0 k

let gaussian t ~mu ~sigma =
  (* Box–Muller; guard against log 0 by never drawing exactly 0. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let exponential t ~rate =
  if rate <= 0.0 then invalid_arg "Splitmix.exponential: rate must be positive";
  let rec nonzero () =
    let u = float t 1.0 in
    if u = 0.0 then nonzero () else u
  in
  -.log (nonzero ()) /. rate
