type selection = Full_rescan | Incremental

type config = {
  two_phase : bool;
  selection : selection;
  only_unsatisfied_gain : bool;
}

let default_config =
  { two_phase = true; selection = Full_rescan; only_unsatisfied_gain = true }

type stats = {
  iterations : int;
  rollbacks : int;
  gain_evaluations : int;
  heap_pushes : int;
  stale_pops : int;
  evals : State.evals;
  dedup_formulas : int;
}

let empty_stats =
  {
    iterations = 0;
    rollbacks = 0;
    gain_evaluations = 0;
    heap_pushes = 0;
    stale_pops = 0;
    evals = State.no_evals;
    dedup_formulas = 0;
  }

(* selection-work counters threaded through both phase-1 variants, plus
   the caller's deadline token (ticked once per gain evaluation — the
   dominant unit of selection work) *)
type counters = {
  mutable c_gain_evals : int;
  mutable c_heap_pushes : int;
  mutable c_stale_pops : int;
  c_deadline : Resilience.Deadline.t;
}

type outcome = {
  solution : (Lineage.Tid.t * float) list;
  cost : float;
  satisfied : int list;
  feasible : bool;
  stopped : string option;
  iterations : int;
  rollbacks : int;
  stats : stats;
}

let compute_gain cfg cnt st bid =
  cnt.c_gain_evals <- cnt.c_gain_evals + 1;
  Resilience.Deadline.tick cnt.c_deadline;
  State.gain st bid
    ~only_unsatisfied:cfg.only_unsatisfied_gain
    (Problem.delta (State.problem st))

(* ------------------------------------------------------------------ *)
(* Phase 1, full-rescan selection (paper-faithful) *)

let select_full_rescan cfg cnt st =
  let nb = Problem.num_bases (State.problem st) in
  let best = ref (-1) and best_gain = ref 0.0 in
  for bid = 0 to nb - 1 do
    let g = compute_gain cfg cnt st bid in
    if g > !best_gain then begin
      best := bid;
      best_gain := g
    end
  done;
  if !best >= 0 then Some (!best, !best_gain) else None

let phase1_full_rescan cfg cnt st last_gain =
  let problem = State.problem st in
  let required = Problem.required problem in
  let iterations = ref 0 in
  let feasible = ref true in
  while
    State.satisfied_count st < required
    && !feasible
    && not (Resilience.Deadline.expired cnt.c_deadline)
  do
    match select_full_rescan cfg cnt st with
    | None -> feasible := false
    | Some (bid, g) ->
      if State.raise_by_delta st bid then begin
        last_gain.(bid) <- g;
        incr iterations
      end
      else feasible := false
  done;
  (!iterations, !feasible)

(* ------------------------------------------------------------------ *)
(* Phase 1, incremental selection: same argmax sequence, maintained in a
   version-stamped heap.  When base [b] is raised, only gains of bases
   sharing an affected result with [b] can change. *)

let neighbors problem bid =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun rid ->
      List.iter
        (fun b -> Hashtbl.replace seen b ())
        (Problem.bases_of_result problem rid))
    (Problem.results_of_base problem bid);
  Hashtbl.fold (fun b () acc -> b :: acc) seen []

let phase1_incremental cfg cnt st last_gain =
  let problem = State.problem st in
  let nb = Problem.num_bases problem in
  let required = Problem.required problem in
  let stamp = Array.make nb 0 in
  let heap : (int * int) Heap.t = Heap.create ~capacity:(nb + 1) () in
  let push bid =
    let g = compute_gain cfg cnt st bid in
    stamp.(bid) <- stamp.(bid) + 1;
    if g > 0.0 then begin
      cnt.c_heap_pushes <- cnt.c_heap_pushes + 1;
      Heap.push heap g (bid, stamp.(bid))
    end
  in
  for bid = 0 to nb - 1 do
    push bid
  done;
  let iterations = ref 0 in
  let feasible = ref true in
  while
    State.satisfied_count st < required
    && !feasible
    && not (Resilience.Deadline.expired cnt.c_deadline)
  do
    match Heap.pop heap with
    | None -> feasible := false
    | Some (g, (bid, s)) ->
      if s = stamp.(bid) then begin
        if State.raise_by_delta st bid then begin
          last_gain.(bid) <- g;
          incr iterations;
          List.iter push (neighbors problem bid)
        end
        else
          (* at cap: stamp it out of the heap *)
          stamp.(bid) <- stamp.(bid) + 1
      end
      else cnt.c_stale_pops <- cnt.c_stale_pops + 1
  done;
  (!iterations, !feasible)

(* ------------------------------------------------------------------ *)
(* Phase 2: rollback in ascending latest-gain* order (Fig. 6, lines 12-19) *)

let phase2 deadline st last_gain =
  let problem = State.problem st in
  let required = Problem.required problem in
  let raised = State.raised_bases st in
  let order =
    List.stable_sort
      (fun a b -> Float.compare last_gain.(a) last_gain.(b))
      raised
  in
  let rollbacks = ref 0 in
  List.iter
    (fun bid ->
      let continue_ = ref true in
      (* an expiring deadline just stops the rollback early: phase 2 only
         strips redundant increments, so the solution stays feasible *)
      while
        !continue_
        && State.satisfied_count st >= required
        && not (Resilience.Deadline.expired deadline)
      do
        Resilience.Deadline.tick deadline;
        if State.lower_by_delta st bid then
          if State.satisfied_count st < required then begin
            (* one step too far: undo *)
            ignore (State.raise_by_delta st bid);
            continue_ := false
          end
          else incr rollbacks
        else continue_ := false
      done)
    order;
  !rollbacks

let solve_state ?(config = default_config) ?metrics
    ?(deadline = Resilience.Deadline.never) st =
  let problem = State.problem st in
  let nb = Problem.num_bases problem in
  let required = Problem.required problem in
  let last_gain = Array.make nb 0.0 in
  let cnt =
    {
      c_gain_evals = 0;
      c_heap_pushes = 0;
      c_stale_pops = 0;
      c_deadline = deadline;
    }
  in
  (* counter snapshot: callers hand in already-used states (the D&C repair
     pass), so the stats report this solve's delta, not lifetime totals *)
  let evals0 = State.evals st in
  let iterations, _ =
    match config.selection with
    | Full_rescan -> phase1_full_rescan config cnt st last_gain
    | Incremental -> phase1_incremental config cnt st last_gain
  in
  (* feasibility is a property of the reached state, not of how phase 1
     ended: a deadline can stop it mid-climb (infeasible partial), and
     gain exhaustion with the quota already met is still feasible *)
  let feasible = State.satisfied_count st >= required in
  let rollbacks =
    if config.two_phase && feasible then phase2 deadline st last_gain else 0
  in
  let stopped =
    if Resilience.Deadline.expired deadline then
      Some (Resilience.Deadline.reason deadline)
    else None
  in
  let evals = State.evals_since st evals0 in
  let stats =
    {
      iterations;
      rollbacks;
      gain_evaluations = cnt.c_gain_evals;
      heap_pushes = cnt.c_heap_pushes;
      stale_pops = cnt.c_stale_pops;
      evals;
      dedup_formulas = Problem.dedup_formulas problem;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Obs.Metrics.incr m ~by:iterations "greedy.iterations";
    Obs.Metrics.incr m ~by:rollbacks "greedy.rollbacks";
    Obs.Metrics.incr m ~by:cnt.c_gain_evals "greedy.gain_evaluations";
    Obs.Metrics.incr m ~by:cnt.c_heap_pushes "greedy.heap_pushes";
    Obs.Metrics.incr m ~by:cnt.c_stale_pops "greedy.stale_pops";
    State.record_evals m evals);
  {
    solution = State.solution st;
    cost = State.cost st;
    satisfied = State.satisfied_results st;
    feasible;
    stopped;
    iterations;
    rollbacks;
    stats;
  }

let solve ?config ?metrics ?deadline problem =
  (match metrics with
  | None -> ()
  | Some m ->
    Obs.Metrics.observe m "problem.dedup_formulas"
      (float_of_int (Problem.dedup_formulas problem)));
  solve_state ?config ?metrics ?deadline (State.create problem)
