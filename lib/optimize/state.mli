(** Mutable assignment state shared by all solvers.

    Tracks the current confidence of every base tuple, lazily re-evaluates
    affected result confidences when a base changes (using the problem's
    inverted index), and maintains the satisfied count and total cost
    incrementally.  A result is {e satisfied} when its confidence is
    strictly above β (the paper's "higher than the threshold"). *)

type t

val create : Problem.t -> t
(** Fresh state at the initial confidences.  When the problem was built
    with [~incremental:true] (the default), single-base updates are routed
    through per-class {e affine coefficient caches}: result confidence is
    multilinear in base levels, so for a fixed assignment of the other
    variables it is [a + b * level] in any one base's level.  The
    coefficients are filled lazily from observed evaluations — a cache
    miss costs {e one} full evaluation (cached as a point), a later
    request at a different level completes [(a, b)] from the two points —
    so a state never evaluates more than the non-incremental baseline,
    and every re-evaluation and probe against a base with a completed
    pair is O(1) until a {e different} variable of the formula changes.
    Results whose affine value lands within [1e-9] of β are re-evaluated
    with the full compiled evaluator so satisfied / unsatisfied decisions
    are identical to the non-incremental baseline. *)

val problem : t -> Problem.t

val base_level : t -> int -> float
(** Current confidence of a base tuple. *)

val set_base : t -> int -> float -> unit
(** [set_base st bid p] sets a base tuple's confidence.
    @raise Invalid_argument if [p] is outside [\[p0, cap\]] (the optimizer
    may roll increments back, but never below the initial level). *)

val raise_by_delta : t -> int -> bool
(** [raise_by_delta st bid] raises the base by one grid step (clamped to
    the cap).  Returns [false] (and does nothing) when already at cap. *)

val lower_by_delta : t -> int -> bool
(** Inverse of {!raise_by_delta}; stops at [p0]. *)

val result_confidence : t -> int -> float
(** Confidence of result [rid] under the current assignment (cached). *)

val is_satisfied : t -> int -> bool

val satisfied_count : t -> int

val satisfied_results : t -> int list
(** Ascending rids. *)

val cost : t -> float
(** Total increment cost of the current assignment vs the initial one. *)

val raised_bases : t -> int list
(** Bids whose level is currently above their initial confidence,
    ascending. *)

val solution : t -> (Lineage.Tid.t * float) list
(** Target levels for raised bases only — the strategy reported to the
    user ("increase tuple X to confidence p"). *)

val snapshot : t -> float array
(** Copy of the current per-base levels (index = bid). *)

val restore : t -> float array -> unit
(** Restore a {!snapshot}.  O(changed bases) re-evaluation. *)

val reset : t -> unit
(** Back to the initial assignment. *)

val confidence_with_override : t -> rid:int -> bid:int -> level:float -> float
(** [confidence_with_override st ~rid ~bid ~level] is the confidence of
    [rid] if base [bid] were at [level], without changing the state. *)

val gain : t -> int -> ?only_unsatisfied:bool -> float -> float
(** [gain st bid dp] is the paper's gain*: [Σ ΔF_λ / Δcost] over the
    results affected by [bid] when raising it by [dp] (clamped at cap).
    [only_unsatisfied] (default [false], the paper's definition) restricts
    the sum to results not yet above β.  Returns 0 when the base cannot be
    raised or the cost of the step is infinite. *)

(** {1 Evaluation counters}

    Monotone counters over the state's lifetime, for observability and the
    incremental-vs-baseline bench panel.  Reading them never changes
    behavior. *)

val incremental_evals : t -> int
(** Confidence probes served from a cached affine coefficient pair
    (an O(1) multiply-add instead of a full lineage evaluation). *)

val full_evals : t -> int
(** Full compiled-evaluator calls (initial evaluation, coefficient
    computation, β-neighborhood fallbacks — and, with incremental
    evaluation off, every re-evaluation and probe). *)

val coeff_invalidations : t -> int
(** Cached coefficient pairs found stale (a different variable of the
    class's formula had changed) and recomputed. *)

type evals = {
  incremental_evals : int;
  full_evals : int;
  coeff_invalidations : int;
}
(** The three counters as one value, for solver [stats] records. *)

val no_evals : evals

val evals : t -> evals
(** Current totals. *)

val evals_since : t -> evals -> evals
(** [evals_since st e0] is the per-field difference between the current
    totals and the earlier snapshot [e0] — solvers that operate on a
    caller-supplied state (e.g. the divide-and-conquer repair pass calling
    {!Greedy.solve_state}) report deltas, not lifetime totals. *)

val add_evals : evals -> evals -> evals

val record_evals : Obs.Metrics.t -> evals -> unit
(** Bump the [state.incremental_evals] / [state.full_evals] /
    [state.coeff_invalidations] counters of a metrics registry. *)
