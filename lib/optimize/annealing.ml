module Sm = Prng.Splitmix

type config = {
  seed : int;
  iterations : int;
  initial_temperature : float;
  cooling : float;
  penalty : float;
  restarts : int;
}

let default_config =
  {
    seed = 1;
    iterations = 100_000;
    initial_temperature = 50.0;
    cooling = 0.9997;
    penalty = 10_000.0;
    restarts = 3;
  }

type stats = {
  accepted_moves : int;  (** summed over all restarts *)
  rejected_moves : int;
  uphill_accepts : int;  (** accepted moves that increased the energy *)
  restarts : int;
  final_temperature : float;  (** temperature when the last walk ended *)
  evals : State.evals;  (** summed over all restarts' walk states *)
  dedup_formulas : int;
}

let empty_stats =
  {
    accepted_moves = 0;
    rejected_moves = 0;
    uphill_accepts = 0;
    restarts = 0;
    final_temperature = 0.0;
    evals = State.no_evals;
    dedup_formulas = 0;
  }

type outcome = {
  solution : (Lineage.Tid.t * float) list;
  cost : float;
  satisfied : int list;
  feasible : bool;
  stopped : string option;
  accepted_moves : int;
  stats : stats;
}

(* shortfall of one result: how far below the threshold it sits *)
let shortfall_of problem conf =
  Float.max 0.0 (Problem.beta problem -. conf)

(* Energy combines the increment cost, a per-missing-result penalty, and a
   continuous shortfall term that gives the walk a gradient towards the
   threshold (without it, every step before a crossing raises energy and
   the walk freezes on the plateau once the temperature drops). *)
let energy config st shortfall_sum =
  let problem = State.problem st in
  let required = Problem.required problem in
  let missing = max 0 (required - State.satisfied_count st) in
  let cost = State.cost st in
  let base = if cost = infinity then 1e18 else cost in
  if missing = 0 then base
  else
    base
    +. (config.penalty *. float_of_int missing)
    +. (config.penalty *. 0.1 *. shortfall_sum)

(* strip increments the requirement does not need (phase-2 style) *)
let rollback st =
  let problem = State.problem st in
  let required = Problem.required problem in
  List.iter
    (fun bid ->
      let continue_ = ref true in
      while !continue_ && State.satisfied_count st >= required do
        if State.lower_by_delta st bid then begin
          if State.satisfied_count st < required then begin
            ignore (State.raise_by_delta st bid);
            continue_ := false
          end
        end
        else continue_ := false
      done)
    (State.raised_bases st)

let walk config problem rng deadline =
  let st = State.create problem in
  let nb = Problem.num_bases problem in
  let nr = Problem.num_results problem in
  let required = Problem.required problem in
  let accepted = ref 0 in
  let rejected = ref 0 in
  let uphill = ref 0 in
  (* shortfall sum over all results, maintained incrementally per move *)
  let shortfall = ref 0.0 in
  for rid = 0 to nr - 1 do
    shortfall :=
      !shortfall +. shortfall_of problem (State.result_confidence st rid)
  done;
  let current_energy = ref (energy config st !shortfall) in
  let best_energy = ref !current_energy in
  let best_snapshot = ref (State.snapshot st) in
  let temperature = ref config.initial_temperature in
  if nb > 0 then begin
    let moves = ref 0 in
    while
      !moves < config.iterations && not (Resilience.Deadline.expired deadline)
    do
      incr moves;
      Resilience.Deadline.tick deadline;
      let bid = Sm.int rng nb in
      (* drift: push up while the requirement is unmet, down afterwards *)
      let up_bias =
        if State.satisfied_count st < required then 0.8 else 0.25
      in
      let up = Sm.coin rng up_bias in
      let affected = Problem.results_of_base problem bid in
      let old_contrib =
        List.fold_left
          (fun acc rid ->
            acc +. shortfall_of problem (State.result_confidence st rid))
          0.0 affected
      in
      let moved =
        if up then State.raise_by_delta st bid else State.lower_by_delta st bid
      in
      if moved then begin
        let new_contrib =
          List.fold_left
            (fun acc rid ->
              acc +. shortfall_of problem (State.result_confidence st rid))
            0.0 affected
        in
        let shortfall' = !shortfall -. old_contrib +. new_contrib in
        let e = energy config st shortfall' in
        let de = e -. !current_energy in
        let accept =
          de <= 0.0
          || Sm.float rng 1.0 < Float.exp (-.de /. Float.max !temperature 1e-9)
        in
        if accept then begin
          incr accepted;
          if de > 0.0 then incr uphill;
          current_energy := e;
          shortfall := shortfall';
          if e < !best_energy then begin
            best_energy := e;
            best_snapshot := State.snapshot st
          end
        end
        else begin
          incr rejected;
          if up then ignore (State.lower_by_delta st bid)
          else ignore (State.raise_by_delta st bid)
        end
      end;
      temperature := !temperature *. config.cooling
    done
  end;
  State.restore st !best_snapshot;
  (* rollback is optimization, not correctness: skip it once the deadline
     is gone (the restored best snapshot is already feasible or not) *)
  if
    State.satisfied_count st >= required
    && not (Resilience.Deadline.expired deadline)
  then rollback st;
  (st, !accepted, !rejected, !uphill, !temperature)

let solve ?(config = default_config) ?metrics
    ?(deadline = Resilience.Deadline.never) problem =
  let required = Problem.required problem in
  let best : (State.t * int) option ref = ref None in
  let total_accepted = ref 0 in
  let total_rejected = ref 0 in
  let total_uphill = ref 0 in
  let restarts_run = ref 0 in
  let last_temperature = ref config.initial_temperature in
  let total_evals = ref State.no_evals in
  for r = 0 to max 0 (config.restarts - 1) do
    (* an expired deadline skips the remaining restarts entirely *)
    if not (Resilience.Deadline.expired deadline) then begin
      let rng = Sm.of_int (config.seed + (r * 7919)) in
      let st, accepted, rejected, uphill, final_temp =
        walk config problem rng deadline
      in
      incr restarts_run;
    total_accepted := !total_accepted + accepted;
    total_rejected := !total_rejected + rejected;
    total_uphill := !total_uphill + uphill;
    total_evals := State.add_evals !total_evals (State.evals st);
    last_temperature := final_temp;
    let better =
      match !best with
      | None -> true
      | Some (prev, _) ->
        let fp = State.satisfied_count prev >= required in
        let fc = State.satisfied_count st >= required in
        if fc && not fp then true
        else if fp && not fc then false
        else State.cost st < State.cost prev
    in
      if better then best := Some (st, accepted)
    end
  done;
  let stopped =
    if Resilience.Deadline.expired deadline then
      Some (Resilience.Deadline.reason deadline)
    else None
  in
  let stats =
    {
      accepted_moves = !total_accepted;
      rejected_moves = !total_rejected;
      uphill_accepts = !total_uphill;
      restarts = !restarts_run;
      final_temperature = !last_temperature;
      evals = !total_evals;
      dedup_formulas = Problem.dedup_formulas problem;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Obs.Metrics.incr m ~by:!total_accepted "annealing.accepted_moves";
    Obs.Metrics.incr m ~by:!total_rejected "annealing.rejected_moves";
    Obs.Metrics.incr m ~by:!total_uphill "annealing.uphill_accepts";
    Obs.Metrics.incr m ~by:!restarts_run "annealing.restarts";
    State.record_evals m !total_evals;
    Obs.Metrics.observe m "problem.dedup_formulas"
      (float_of_int (Problem.dedup_formulas problem)));
  match !best with
  | None ->
    {
      solution = [];
      cost = 0.0;
      satisfied = [];
      feasible = required = 0;
      stopped;
      accepted_moves = 0;
      stats;
    }
  | Some (st, accepted) ->
    let feasible = State.satisfied_count st >= required in
    {
      solution = State.solution st;
      cost = State.cost st;
      satisfied = State.satisfied_results st;
      feasible;
      stopped;
      accepted_moves = accepted;
      stats;
    }
