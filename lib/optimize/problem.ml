module Tid = Lineage.Tid
module Formula = Lineage.Formula

type base = { tid : Tid.t; p0 : float; cap : float; cost : Cost.Cost_model.t }

type result_tuple = { rid : int; formula : Formula.t }

type t = {
  beta : float;
  required : int;
  delta : float;
  incremental : bool;
  bases : base array;
  results : result_tuple array;
  base_index : int Tid.Table.t;
  results_of_base : int list array;
  bases_of_result : int list array;
  (* Structurally equal formulas (self-joins, grouped outputs) are deduped
     into evaluation *classes*: one compiled evaluator, one confidence
     slot and one affine-coefficient cache per class, shared by all its
     member results.  With [incremental = false] every result is its own
     class and behavior is identical to the pre-dedup code. *)
  class_of_result : int array; (* rid -> cid *)
  class_members : int list array; (* cid -> member rids, ascending *)
  classes_of_base : int list array; (* bid -> cids mentioning it, ascending *)
  bases_of_class : int list array; (* cid -> bids of the class formula *)
  dedup_formulas : int; (* results sharing another result's class *)
  compiled : (float array -> float) array;
      (* per-class confidence evaluator over the bid-indexed level array *)
  kinds : string array;
      (* per-class evaluator kind: "read_once", "circuit", "obdd" or
         "shannon" — observability for [pcqe explain] and the bench *)
}

(* Compile a formula into a closure over the level array.  Read-once
   formulas get a direct arithmetic tree; entangled ones are compiled once
   into an OBDD whose probability evaluation is linear in the BDD size on
   every call (the solvers re-evaluate the same lineage under thousands of
   different assignments); pathological formulas whose BDD explodes fall
   back to per-call Shannon expansion. *)
let bdd_size_cap = 10_000

(* Allocation headroom for the OBDD build: the construction may allocate
   intermediate nodes that the final reduced root does not reach, so the
   early-abort budget is a multiple of the reachable-size cap. *)
let bdd_construction_slack = 4

let compile base_index formula =
  if Formula.is_read_once formula then begin
    let rec go = function
      | Formula.True -> fun _ -> 1.0
      | Formula.False -> fun _ -> 0.0
      | Formula.Var tid ->
        let bid = Tid.Table.find base_index tid in
        fun levels -> levels.(bid)
      | Formula.Not f ->
        let g = go f in
        fun levels -> 1.0 -. g levels
      | Formula.And fs ->
        let gs = Array.of_list (List.map go fs) in
        fun levels ->
          let acc = ref 1.0 in
          for i = 0 to Array.length gs - 1 do
            acc := !acc *. gs.(i) levels
          done;
          !acc
      | Formula.Or fs ->
        let gs = Array.of_list (List.map go fs) in
        fun levels ->
          let acc = ref 1.0 in
          for i = 0 to Array.length gs - 1 do
            acc := !acc *. (1.0 -. gs.(i) levels)
          done;
          1.0 -. !acc
    in
    (go formula, "read_once")
  end
  else begin
    let lookup levels tid =
      match Tid.Table.find_opt base_index tid with
      | Some bid -> levels.(bid)
      | None -> 0.0
    in
    let shannon levels = Lineage.Prob.exact (lookup levels) formula in
    let obdd_or_shannon () =
      let manager = Lineage.Bdd.manager () in
      (* Abort the OBDD build as soon as it allocates past the budget (a
         pathological formula used to pay the full blowup and then discard
         it); a completed build still goes through the reachable-size check
         that decided the fallback before the early abort existed. *)
      match
        Lineage.Bdd.of_formula
          ~size_cap:(bdd_size_cap * bdd_construction_slack)
          manager formula
      with
      | exception Lineage.Bdd.Size_cap_exceeded -> (shannon, "shannon")
      | bdd ->
        if Lineage.Bdd.size bdd > bdd_size_cap then (shannon, "shannon")
        else
          ((fun levels -> Lineage.Bdd.prob manager (lookup levels) bdd), "obdd")
    in
    (* d-DNNF circuit first: one compile (the cost of one exact
       evaluation), then every solver probe is a linear pass.  [eval]
       allocates its scratch per call, so concurrent probes from a
       pooled solver are safe — matching the per-call allocation of
       [Bdd.prob] and the Shannon closure.  A node-cap overflow falls
       back to the OBDD/Shannon pair exactly as before. *)
    match
      if Lineage.Circuit.enabled () then Lineage.Circuit.compile_opt formula
      else None
    with
    | Some c ->
      ((fun levels -> Lineage.Circuit.eval c (lookup levels)), "circuit")
    | None -> obdd_or_shannon ()
  end

let ( let* ) = Result.bind

let make ?(delta = 0.1) ?(incremental = true) ~beta ~required ~bases ~formulas
    () =
  let* () =
    if not (beta >= 0.0 && beta <= 1.0) then
      Error (Printf.sprintf "beta %g outside [0,1]" beta)
    else Ok ()
  in
  let* () =
    if delta <= 0.0 || delta > 1.0 then
      Error (Printf.sprintf "delta %g outside (0,1]" delta)
    else Ok ()
  in
  let n = List.length formulas in
  let* () =
    if required < 0 || required > n then
      Error (Printf.sprintf "required %d outside [0,%d]" required n)
    else Ok ()
  in
  let* () =
    List.fold_left
      (fun acc b ->
        let* () = acc in
        if not (b.p0 >= 0.0 && b.p0 <= b.cap && b.cap <= 1.0) then
          Error
            (Printf.sprintf "base %s: need 0 <= p0 (%g) <= cap (%g) <= 1"
               (Tid.to_string b.tid) b.p0 b.cap)
        else Ok ())
      (Ok ()) bases
  in
  let bases = Array.of_list bases in
  let base_index = Tid.Table.create (Array.length bases) in
  let* () =
    try
      Array.iteri
        (fun i b ->
          if Tid.Table.mem base_index b.tid then
            failwith (Printf.sprintf "duplicate base tuple %s" (Tid.to_string b.tid));
          Tid.Table.add base_index b.tid i)
        bases;
      Ok ()
    with Failure msg -> Error msg
  in
  let results =
    Array.of_list (List.mapi (fun rid formula -> { rid; formula }) formulas)
  in
  let results_of_base = Array.make (Array.length bases) [] in
  let bases_of_result = Array.make (Array.length results) [] in
  let* () =
    try
      Array.iter
        (fun r ->
          let vars = Formula.vars r.formula in
          Tid.Set.iter
            (fun v ->
              match Tid.Table.find_opt base_index v with
              | None ->
                failwith
                  (Printf.sprintf "result %d references unknown base %s" r.rid
                     (Tid.to_string v))
              | Some bid ->
                results_of_base.(bid) <- r.rid :: results_of_base.(bid);
                bases_of_result.(r.rid) <- bid :: bases_of_result.(r.rid))
            vars)
        results;
      Ok ()
    with Failure msg -> Error msg
  in
  Array.iteri (fun i l -> results_of_base.(i) <- List.rev l) results_of_base;
  Array.iteri (fun i l -> bases_of_result.(i) <- List.rev l) bases_of_result;
  (* Evaluation classes: hash-cons structurally equal formulas so duplicate
     results share one compiled evaluator (and, in State, one confidence
     slot and one coefficient cache).  [incremental = false] keeps the
     identity mapping — one class per result, exactly the old layout. *)
  let nr = Array.length results in
  let class_of_result = Array.make nr 0 in
  let class_formulas =
    if incremental then begin
      let tbl : int Formula.Table.t = Formula.Table.create (max 16 nr) in
      let rev_formulas = ref [] and count = ref 0 in
      Array.iter
        (fun r ->
          match Formula.Table.find_opt tbl r.formula with
          | Some cid -> class_of_result.(r.rid) <- cid
          | None ->
            let cid = !count in
            incr count;
            Formula.Table.add tbl r.formula cid;
            rev_formulas := r.formula :: !rev_formulas;
            class_of_result.(r.rid) <- cid)
        results;
      Array.of_list (List.rev !rev_formulas)
    end
    else begin
      Array.iteri (fun rid _ -> class_of_result.(rid) <- rid) results;
      Array.map (fun r -> r.formula) results
    end
  in
  let num_classes = Array.length class_formulas in
  let class_members = Array.make num_classes [] in
  for rid = nr - 1 downto 0 do
    let cid = class_of_result.(rid) in
    class_members.(cid) <- rid :: class_members.(cid)
  done;
  let classes_of_base = Array.make (Array.length bases) [] in
  let bases_of_class = Array.make num_classes [] in
  Array.iteri
    (fun cid f ->
      Tid.Set.iter
        (fun v ->
          let bid = Tid.Table.find base_index v in
          classes_of_base.(bid) <- cid :: classes_of_base.(bid);
          bases_of_class.(cid) <- bid :: bases_of_class.(cid))
        (Formula.vars f))
    class_formulas;
  Array.iteri (fun i l -> classes_of_base.(i) <- List.rev l) classes_of_base;
  Array.iteri (fun i l -> bases_of_class.(i) <- List.rev l) bases_of_class;
  let compiled_kinds = Array.map (compile base_index) class_formulas in
  let compiled = Array.map fst compiled_kinds in
  let kinds = Array.map snd compiled_kinds in
  Ok
    {
      beta;
      required;
      delta;
      incremental;
      bases;
      results;
      base_index;
      results_of_base;
      bases_of_result;
      class_of_result;
      class_members;
      classes_of_base;
      bases_of_class;
      dedup_formulas = nr - num_classes;
      compiled;
      kinds;
    }

let make_exn ?delta ?incremental ~beta ~required ~bases ~formulas () =
  match make ?delta ?incremental ~beta ~required ~bases ~formulas () with
  | Ok t -> t
  | Error msg -> invalid_arg ("Problem.make: " ^ msg)

let of_query_results ?delta ?incremental ?required ?conf_of ~theta ~beta
    ~cost_of ~cap_of db (res : Relational.Eval.annotated) =
  let* () =
    if not (theta >= 0.0 && theta <= 1.0) then
      Error (Printf.sprintf "theta %g outside [0,1]" theta)
    else Ok ()
  in
  let rows = Array.of_list res.Relational.Eval.rows in
  let n = Array.length rows in
  let conf_of row =
    match conf_of with
    | Some conf -> conf row.Relational.Eval.lineage
    | None ->
      Lineage.Prob.confidence
        (Relational.Database.confidence_fn db)
        row.Relational.Eval.lineage
  in
  let failing = ref [] and satisfied = ref 0 in
  Array.iteri
    (fun i row ->
      if conf_of row > beta then incr satisfied else failing := i :: !failing)
    rows;
  let failing = List.rev !failing in
  let required =
    match required with
    | Some r -> r
    | None ->
      let want = int_of_float (ceil (theta *. float_of_int n)) in
      max 0 (min (List.length failing) (want - !satisfied))
  in
  (* collect base tuples of failing results *)
  let formulas =
    List.map (fun i -> rows.(i).Relational.Eval.lineage) failing
  in
  let tid_set =
    List.fold_left
      (fun acc f -> Tid.Set.union acc (Formula.vars f))
      Tid.Set.empty formulas
  in
  let bases =
    List.map
      (fun tid ->
        {
          tid;
          p0 = Relational.Database.confidence db tid;
          cap = cap_of tid;
          cost = cost_of tid;
        })
      (Tid.Set.elements tid_set)
  in
  let* t = make ?delta ?incremental ~beta ~required ~bases ~formulas () in
  Ok (t, failing)

let beta t = t.beta
let required t = t.required
let delta t = t.delta
let incremental t = t.incremental
let num_bases t = Array.length t.bases
let num_results t = Array.length t.results
let base t i = t.bases.(i)
let result t i = t.results.(i)
let bases t = t.bases
let results t = t.results
let bid_of_tid t tid = Tid.Table.find_opt t.base_index tid
let results_of_base t i = t.results_of_base.(i)
let bases_of_result t i = t.bases_of_result.(i)
let num_classes t = Array.length t.compiled
let class_of_result t rid = t.class_of_result.(rid)
let class_members t cid = t.class_members.(cid)
let classes_of_base t bid = t.classes_of_base.(bid)
let bases_of_class t cid = t.bases_of_class.(cid)
let dedup_formulas t = t.dedup_formulas
let evaluator_kind t cid = t.kinds.(cid)

let eval_class t levels cid = t.compiled.(cid) levels

let eval_result t levels rid = t.compiled.(t.class_of_result.(rid)) levels

let grid_levels t bid =
  let b = t.bases.(bid) in
  let rec go acc level =
    if level >= b.cap -. 1e-12 then List.rev (b.cap :: acc)
    else go (level :: acc) (level +. t.delta)
  in
  go [] b.p0

let to_string t =
  Printf.sprintf
    "instance: %d base tuple(s), %d result(s), beta=%g, required=%d, delta=%g"
    (num_bases t) (num_results t) t.beta t.required t.delta
