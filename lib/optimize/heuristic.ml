type heuristics = { h1 : bool; h2 : bool; h3 : bool; h4 : bool }

let all_heuristics = { h1 = true; h2 = true; h3 = true; h4 = true }
let naive = { h1 = false; h2 = false; h3 = false; h4 = false }

let only = function
  | `H1 -> { naive with h1 = true }
  | `H2 -> { naive with h2 = true }
  | `H3 -> { naive with h3 = true }
  | `H4 -> { naive with h4 = true }

type config = {
  heuristics : heuristics;
  initial_bound : float option;
  max_nodes : int option;
}

let default_config =
  { heuristics = all_heuristics; initial_bound = None; max_nodes = None }

type stats = {
  nodes : int;
  bound_updates : int;
  incumbent_prunes : int;
  h1_ordered : bool;
  h2_prunes : int;
  h3_prunes : int;
  h4_prunes : int;
  budget_exhausted : bool;
  stop_reason : string option;
  evals : State.evals;
  dedup_formulas : int;
}

let empty_stats =
  {
    nodes = 0;
    bound_updates = 0;
    incumbent_prunes = 0;
    h1_ordered = false;
    h2_prunes = 0;
    h3_prunes = 0;
    h4_prunes = 0;
    budget_exhausted = false;
    stop_reason = None;
    evals = State.no_evals;
    dedup_formulas = 0;
  }

type outcome = {
  solution : (Lineage.Tid.t * float) list option;
  cost : float;
  optimal : bool;
  stopped : string option;
  nodes : int;
  stats : stats;
}

(* H1 ordering key: minimum cost at which raising this tuple alone lifts at
   least one affected result above beta.  When unreachable even at the cap,
   the paper scales the cap cost by beta / Fmax. *)
let compute_cost_beta_scratch problem scratch bid =
  let b = Problem.base problem bid in
  let beta = Problem.beta problem in
  let affected = Problem.results_of_base problem bid in
  let levels = Problem.grid_levels problem bid in
  let cost_to level =
    Cost.Cost_model.eval b.Problem.cost ~from_:b.Problem.p0 ~to_:level
  in
  let conf_at level rid =
    scratch.(bid) <- level;
    let f = Problem.eval_result problem scratch rid in
    scratch.(bid) <- b.Problem.p0;
    f
  in
  (* cheapest level (over the grid) that satisfies some affected result *)
  let best =
    List.fold_left
      (fun acc level ->
        match acc with
        | Some _ -> acc
        | None ->
          if List.exists (fun rid -> conf_at level rid > beta) affected then
            Some (cost_to level)
          else None)
      None levels
  in
  match best with
  | Some c -> c
  | None ->
    let f_max =
      List.fold_left
        (fun acc rid -> Float.max acc (conf_at b.Problem.cap rid))
        0.0 affected
    in
    if f_max <= 0.0 then infinity else cost_to b.Problem.cap /. (f_max /. beta)

let initial_levels problem =
  Array.init (Problem.num_bases problem) (fun i ->
      (Problem.base problem i).Problem.p0)

let compute_cost_beta problem bid =
  compute_cost_beta_scratch problem (initial_levels problem) bid

(* Cooperative stop: raised at the next node after the node budget or the
   caller's deadline runs out; the incumbent (best-so-far feasible
   solution) is returned as a partial answer. *)
exception Stop of string

let solve ?(config = default_config) ?metrics
    ?(deadline = Resilience.Deadline.never) problem =
  let h = config.heuristics in
  let nb = Problem.num_bases problem in
  let required = Problem.required problem in
  let beta = Problem.beta problem in
  let st = State.create problem in
  (* search order over bids *)
  let order = Array.init nb Fun.id in
  if h.h1 then begin
    let scratch = initial_levels problem in
    let keys = Array.init nb (compute_cost_beta_scratch problem scratch) in
    Array.sort (fun a b -> Float.compare keys.(b) keys.(a)) order
  end;
  (* position of each bid in the search order, for H3's "remaining" test *)
  let pos = Array.make nb 0 in
  Array.iteri (fun i bid -> pos.(bid) <- i) order;
  (* H4: cheapest single delta step among bases at order position >= i,
     taken at their initial level (unassigned bases sit at p0) *)
  let suffix_min_step = Array.make (nb + 1) infinity in
  if h.h4 then
    for i = nb - 1 downto 0 do
      let b = Problem.base problem order.(i) in
      let step =
        Cost.Cost_model.marginal b.Problem.cost ~at:b.Problem.p0
          ~delta:(Problem.delta problem)
      in
      suffix_min_step.(i) <- Float.min step suffix_min_step.(i + 1)
    done;
  let best_cost =
    ref (match config.initial_bound with Some c -> c | None -> infinity)
  in
  let best_solution = ref None in
  let nodes = ref 0 in
  let bound_updates = ref 0 in
  let incumbent_prunes = ref 0 in
  let h2_prunes = ref 0 in
  let h3_prunes = ref 0 in
  let h4_prunes = ref 0 in
  let budget = Option.value ~default:max_int config.max_nodes in
  let budget_exhausted = ref false in
  (* H3: can the subtree below order position [i] still satisfy [required]
     results?  Evaluate every unsatisfied result with all not-yet-assigned
     bases forced to their caps. *)
  let h3_scratch = Array.make nb 0.0 in
  let h3_feasible i =
    for b = 0 to nb - 1 do
      h3_scratch.(b) <-
        (if pos.(b) >= i then (Problem.base problem b).Problem.cap
         else State.base_level st b)
    done;
    let count = ref 0 in
    let nr = Problem.num_results problem in
    let rid = ref 0 in
    while !count < required && !rid < nr do
      (if State.is_satisfied st !rid then incr count
       else if Problem.eval_result problem h3_scratch !rid > beta then
         incr count);
      incr rid
    done;
    !count >= required
  in
  let rec search i =
    if State.satisfied_count st >= required then begin
      (* complete solution: unassigned bases stay at their initial level *)
      let c = State.cost st in
      if c < !best_cost then begin
        best_cost := c;
        best_solution := Some (State.solution st);
        incr bound_updates
      end
    end
    else if i < nb then begin
      let current = State.cost st in
      if current >= !best_cost then
        incr incumbent_prunes (* incumbent pruning, always on *)
      else if h.h4 && current +. suffix_min_step.(i) >= !best_cost then
        incr h4_prunes
      else if h.h3 && not (h3_feasible i) then incr h3_prunes
      else begin
        let bid = order.(i) in
        let affected = Problem.results_of_base problem bid in
        let levels = Problem.grid_levels problem bid in
        (try
           List.iter
             (fun level ->
               incr nodes;
               Resilience.Deadline.tick deadline;
               if !nodes > budget then begin
                 budget_exhausted := true;
                 raise
                   (Stop (Printf.sprintf "node budget (%d) exhausted" budget))
               end;
               if Resilience.Deadline.expired deadline then
                 raise (Stop (Resilience.Deadline.reason deadline));
               State.set_base st bid level;
               search (i + 1);
               (* H2: if every affected result is already above beta, higher
                  values of this base cannot help anything new *)
               if
                 h.h2
                 && List.for_all (fun rid -> State.is_satisfied st rid) affected
               then begin
                 incr h2_prunes;
                 raise Exit
               end)
             levels
         with Exit -> ());
        State.set_base st bid (Problem.base problem bid).Problem.p0
      end
    end
  in
  let stopped =
    try
      search 0;
      None
    with Stop reason -> Some reason
  in
  let optimal = stopped = None in
  let cost = match !best_solution with Some _ -> !best_cost | None -> infinity in
  let evals = State.evals st in
  let stats =
    {
      nodes = !nodes;
      bound_updates = !bound_updates;
      incumbent_prunes = !incumbent_prunes;
      h1_ordered = h.h1;
      h2_prunes = !h2_prunes;
      h3_prunes = !h3_prunes;
      h4_prunes = !h4_prunes;
      budget_exhausted = !budget_exhausted;
      stop_reason = stopped;
      evals;
      dedup_formulas = Problem.dedup_formulas problem;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Obs.Metrics.observe m "heuristic.nodes" (float_of_int !nodes);
    Obs.Metrics.incr m ~by:!bound_updates "heuristic.bound_updates";
    Obs.Metrics.incr m ~by:!incumbent_prunes "heuristic.incumbent_prunes";
    Obs.Metrics.incr m ~by:!h2_prunes "heuristic.h2_prunes";
    Obs.Metrics.incr m ~by:!h3_prunes "heuristic.h3_prunes";
    Obs.Metrics.incr m ~by:!h4_prunes "heuristic.h4_prunes";
    if !budget_exhausted then Obs.Metrics.incr m "heuristic.budget_exhausted";
    State.record_evals m evals;
    Obs.Metrics.observe m "problem.dedup_formulas"
      (float_of_int (Problem.dedup_formulas problem)));
  { solution = !best_solution; cost; optimal; stopped; nodes = !nodes; stats }
