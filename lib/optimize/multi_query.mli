(** Multi-query extension (§4.3, closing remarks).

    When a user issues several queries in a short period, the increments
    should be planned jointly: raising one base tuple can help results of
    multiple queries at once.  Per the paper, the search space becomes the
    union of the distinct base tuples of all queries, and a solution must
    meet {e every} query's requirement.

    We represent the joint instance as a list of single-query instances
    sharing base tuples by {!Lineage.Tid.t} identity, and provide a joint
    greedy solver (gain* sums ΔF across all queries' unsatisfied results)
    with the usual two-phase rollback. *)

type t

val combine : Problem.t list -> (t, string) result
(** [combine instances] builds the joint instance.  Base tuples appearing
    in several instances must agree on [p0], [cap] and cost function;
    instances must agree on [delta].  Fails otherwise. *)

val num_queries : t -> int
val num_bases : t -> int
(** Distinct base tuples across all queries. *)

type outcome = {
  solution : (Lineage.Tid.t * float) list;
  cost : float;
  satisfied_per_query : int list;  (** satisfied count per query, in order *)
  feasible : bool;  (** every query meets its requirement *)
  iterations : int;
  evals : State.evals;
      (** lineage-evaluation counters summed over the per-query states —
          the joint gain* probes go through the same affine caches as the
          single-query solvers *)
}

val solve : ?two_phase:bool -> t -> outcome
(** Joint two-phase greedy. *)
