(** The divide-and-conquer algorithm (§4.3, Fig. 10 of the paper).

    1. Partition the intermediate result tuples into groups with the
       lightweight max-weight merging scheme ({!Partition}).
    2. Solve each group independently with the two-phase greedy; groups
       whose base-tuple count is below τ are additionally refined with the
       branch-and-bound heuristic, seeded with the greedy cost as the
       initial upper bound (the paper: "the results obtained from the
       greedy algorithm serve as initial cost upper bounds").  Each group
       solves for [min(x, required)] results, where [x] is the group's
       result count.
    3. Combine: overlapping base tuples take the {e maximum} target
       confidence across group solutions, which can only increase any
       result's confidence.
    4. Refine: roll back increments in ascending-gain* order while the
       global instance keeps [required] results satisfied (the phase-2
       style rollback). *)

type quota =
  | Min_x_y
      (** the paper's rule: each group solves for [min x y] results, where
          [x] is the group's result count and [y] the global requirement.
          Over-satisfies when groups are small and numerous. *)
  | Proportional
      (** each group solves for its fair share [ceil (x*y/n)] of the global
          requirement; a global greedy repair pass covers any shortfall
          after combination.  Default; ablated against [Min_x_y] in the
          benches. *)

type config = {
  partition : Partition.config;
  tau : int;
      (** run the per-group heuristic when the group has fewer than [tau]
          base tuples (default 12) *)
  greedy : Greedy.config;
  heuristic_max_nodes : int option;
      (** node budget for each per-group branch-and-bound (default
          [Some 50_000]) *)
  quota : quota;
}

val default_config : config

type stats = {
  num_groups : int;
  heuristic_groups : int;
  rollbacks : int;
  largest_group : int;  (** base tuples in the biggest partition group *)
  smallest_group : int;
  mean_group_size : float;
  repair_iterations : int;
      (** greedy increments spent closing the proportional-quota shortfall
          (global repair plus swap-local-search repairs) *)
  swaps_applied : int;  (** local-search group replacements kept *)
  evals : State.evals;
      (** lineage-evaluation counters: group sub-solves plus the global
          combine/repair/refine state, aggregated in group order (so the
          totals are identical at any [jobs] level) *)
  dedup_formulas : int;  (** {!Problem.dedup_formulas} of the global instance *)
}

val empty_stats : stats

type outcome = {
  solution : (Lineage.Tid.t * float) list;
  cost : float;
  satisfied : int list;
  feasible : bool;
  stopped : string option;
      (** [Some reason] when a deadline cut any phase short — a per-group
          share during the parallel sub-solves, or the parent token during
          combine/repair/swap/refine.  The combined best-so-far solution
          is still returned and [feasible] reports whether it meets the
          requirement. *)
  num_groups : int;  (** = [stats.num_groups] *)
  heuristic_groups : int;  (** groups small enough for branch-and-bound *)
  rollbacks : int;  (** refinement decrements kept *)
  stats : stats;
}

val solve :
  ?config:config ->
  ?metrics:Obs.Metrics.t ->
  ?fork:Obs.task_ctx ->
  ?pool:Exec.Pool.t ->
  ?now:(unit -> float) ->
  ?deadline:Resilience.Deadline.t ->
  Problem.t ->
  outcome
(** [metrics] additionally receives a [dnc.group_size] histogram (one
    observation per partition group), [dnc.*] counters, and aggregated
    [greedy.*] and [heuristic.*] counters across all groups: each group's
    sub-solvers write into a private registry which is merged back in
    group order ({!Obs.Metrics.merge}), so the totals are identical
    whether groups run sequentially or on [pool].

    [fork] (an {!Obs.fork} capture taken while the caller's solve span is
    open) makes each group solve record a ["group"] task span — with
    [greedy]/[heuristic] child spans and group-size attributes — into a
    private per-task subtracer; after the join the spans are stitched
    under the captured span in group order, so the trace tree is the same
    at any [jobs] level.

    [pool] solves the partition groups on the pool's domains.  Every
    group builds its own sub-problem, solver state, and registry, so the
    outcome — solution, cost, stats, and merged metrics — is bit-identical
    to the sequential run at any pool size.

    [now] is a wall clock (e.g. [Unix.gettimeofday]); when given together
    with [metrics], each group's solve time is observed into a
    [dnc.group_solve_s] histogram.  It is off by default so that metrics
    stay deterministic.

    [deadline] (default {!Resilience.Deadline.never}) bounds the whole
    solve.  The remaining budget is {!Resilience.Deadline.split} into one
    independent sub-token per partition group {e before} the fan-out and
    {!Resilience.Deadline.absorb}ed after the join, so each group's cut
    point depends only on its own share — logical-budget outcomes stay
    bit-identical at any [jobs] level.  The sequential
    combine/repair/swap/refine phases poll the parent token. *)
