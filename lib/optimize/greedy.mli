(** The two-phase greedy algorithm (§4.2, Fig. 6 of the paper).

    Phase 1 repeatedly raises by δ the base tuple with maximum
    [gain* = Σ ΔF_λ / Δcost] until at least [required] intermediate results
    clear the threshold.  Phase 2 walks the raised tuples in ascending
    order of their latest gain* and rolls back increments that are not
    needed to keep [required] results satisfied.

    Two selection strategies are provided:
    - [Full_rescan] — recompute every base's gain each iteration, exactly
      as the paper's pseudocode does (O(k) per step); used by the
      benchmarks that reproduce the paper's scalability figures.
    - [Incremental] — identical selection sequence, but only the gains
      invalidated by the last increment (bases sharing a result with it)
      are recomputed, tracked in a version-stamped max-heap.  Much faster
      on large instances; our extension, ablated in the benches. *)

type selection = Full_rescan | Incremental

type config = {
  two_phase : bool;  (** enable the rollback phase (default true) *)
  selection : selection;  (** default [Full_rescan] *)
  only_unsatisfied_gain : bool;
      (** count ΔF only over results still below β (default true); [false]
          gives the paper's raw formula (2) *)
}

val default_config : config

type stats = {
  iterations : int;  (** phase-1 increments applied *)
  rollbacks : int;  (** phase-2 decrements kept *)
  gain_evaluations : int;
      (** gain* computations — the dominant selection work; full-rescan
          pays O(k) of these per iteration, incremental only the
          invalidated neighborhood *)
  heap_pushes : int;  (** incremental selection only *)
  stale_pops : int;  (** version-stamped entries discarded on pop *)
  evals : State.evals;
      (** lineage-evaluation counters for this solve (deltas when run via
          {!solve_state} on an already-used state) *)
  dedup_formulas : int;  (** {!Problem.dedup_formulas} of the instance *)
}

val empty_stats : stats

type outcome = {
  solution : (Lineage.Tid.t * float) list;
      (** target confidence per raised base tuple *)
  cost : float;
  satisfied : int list;  (** rids above β under the solution *)
  feasible : bool;
      (** [required] results are satisfied by [solution].  [false] when
          gains are exhausted (even the caps cannot satisfy the quota) or
          a deadline stopped phase 1 mid-climb; the partial best effort
          is still returned *)
  stopped : string option;
      (** [Some reason] when the caller's deadline cut the solve short
          ([None] = ran to completion).  A phase-2 cut leaves [feasible]
          [true] — rollback only strips redundant increments — while a
          phase-1 cut usually leaves the quota unmet *)
  iterations : int;  (** phase-1 increments applied (= [stats.iterations]) *)
  rollbacks : int;  (** phase-2 decrements kept (= [stats.rollbacks]) *)
  stats : stats;
}

val solve :
  ?config:config ->
  ?metrics:Obs.Metrics.t ->
  ?deadline:Resilience.Deadline.t ->
  Problem.t ->
  outcome
(** Run on a fresh state.  [metrics] additionally accumulates the same
    telemetry as [greedy.*] counters.  [deadline] (default
    {!Resilience.Deadline.never}) is ticked once per gain evaluation and
    per phase-2 step; on expiry the solve stops at the next loop head
    and reports [stopped]. *)

val solve_state :
  ?config:config ->
  ?metrics:Obs.Metrics.t ->
  ?deadline:Resilience.Deadline.t ->
  State.t ->
  outcome
(** Run on an existing (possibly pre-modified) state; the state is left at
    the solution assignment — callers that need the original state back
    should {!State.snapshot} first. *)
