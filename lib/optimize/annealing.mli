(** Simulated-annealing baseline for the confidence-increment problem.

    Not part of the paper — an extra baseline we use to sanity-check the
    paper's algorithms: a general-purpose randomized search should not beat
    the domain-specific greedy/D&C by much, and on tiny instances it should
    approach the branch-and-bound optimum.  The benches compare all four.

    The walk moves one base tuple one δ-step up or down (respecting
    [\[p0, cap\]], biased upwards while the requirement is unmet and
    downwards once it is met) and accepts by the Metropolis rule on the
    penalized objective

    {v energy = cost + penalty * max 0 (required - satisfied) v}

    with a geometric cooling schedule and deterministic PRNG seeding.
    The best feasible assignment seen anywhere along the walk is returned
    (after a greedy-style rollback pass to strip useless increments). *)

type config = {
  seed : int;
  iterations : int;  (** total moves; default 100_000 *)
  initial_temperature : float;  (** default 50. *)
  cooling : float;  (** per-move multiplier; default 0.9997 *)
  penalty : float;
      (** energy charged per missing satisfied result (default 10_000 —
          keep well above any realistic increment cost) *)
  restarts : int;  (** independent walks; the best outcome wins (default 3) *)
}

val default_config : config

type stats = {
  accepted_moves : int;  (** summed over all restarts *)
  rejected_moves : int;
  uphill_accepts : int;
      (** accepted moves that increased the energy — the exploration the
          Metropolis rule buys; collapses towards 0 as the walk cools *)
  restarts : int;  (** walks actually run *)
  final_temperature : float;  (** temperature when the last walk ended *)
  evals : State.evals;
      (** lineage-evaluation counters summed over all restarts *)
  dedup_formulas : int;  (** {!Problem.dedup_formulas} of the instance *)
}

val empty_stats : stats

type outcome = {
  solution : (Lineage.Tid.t * float) list;
  cost : float;
  satisfied : int list;
  feasible : bool;
  stopped : string option;
      (** [Some reason] when the caller's deadline cut the walk short;
          the best snapshot seen up to the cut is still returned (and
          [feasible] reports whether it meets the quota) *)
  accepted_moves : int;  (** of the winning restart only *)
  stats : stats;
}

val solve :
  ?config:config ->
  ?metrics:Obs.Metrics.t ->
  ?deadline:Resilience.Deadline.t ->
  Problem.t ->
  outcome
(** [metrics] additionally accumulates the same telemetry as
    [annealing.*] counters.  [deadline] (default
    {!Resilience.Deadline.never}) is ticked once per move; expiry stops
    the current walk at the next move, skips the remaining restarts and
    the rollback polish, and reports [stopped]. *)
