(** The confidence-increment optimization problem (§3.2 of the paper).

    Given intermediate query results λ₁…λₙ whose confidence is below the
    policy threshold β, and the base tuples Λ⁰ they derive from, find
    target confidences p* minimizing

    {v Σ  c_x(p*_x) - c_x(p_x)   over raised base tuples x v}

    subject to at least [required] results reaching confidence above β and
    [p_x <= p*_x <= cap_x].  Confidence increments are explored on a grid of
    step [delta] (the paper's granularity, default 0.1).

    This module is the shared, immutable description of an instance; the
    solvers operate on a mutable {!State.t} view of it. *)

type base = {
  tid : Lineage.Tid.t;
  p0 : float;  (** initial confidence *)
  cap : float;  (** maximum achievable confidence (<= 1) *)
  cost : Cost.Cost_model.t;
}

type result_tuple = {
  rid : int;  (** dense index, assigned by {!make} *)
  formula : Lineage.Formula.t;  (** lineage over the instance's base tuples *)
}

type t

val make :
  ?delta:float ->
  ?incremental:bool ->
  beta:float ->
  required:int ->
  bases:base list ->
  formulas:Lineage.Formula.t list ->
  unit ->
  (t, string) result
(** [make ~beta ~required ~bases ~formulas ()] validates and indexes an
    instance.  Every variable of every formula must be listed in [bases];
    [required] must be in [\[0, length formulas\]]; each base must satisfy
    [0 <= p0 <= cap <= 1].  [delta] defaults to 0.1.

    [incremental] (default [true]) enables the incremental-evaluation
    machinery: structurally equal formulas are hash-consed into shared
    {e evaluation classes} (see {!class_of_result}) and {!State.t} routes
    single-base changes through affine coefficient caches.  [false] forces
    the baseline layout — one class per result, every re-evaluation a full
    compiled-evaluator call — used by the A/B bench panel and tests. *)

val make_exn :
  ?delta:float ->
  ?incremental:bool ->
  beta:float ->
  required:int ->
  bases:base list ->
  formulas:Lineage.Formula.t list ->
  unit ->
  t

val of_query_results :
  ?delta:float ->
  ?incremental:bool ->
  ?required:int ->
  ?conf_of:(Lineage.Formula.t -> float) ->
  theta:float ->
  beta:float ->
  cost_of:(Lineage.Tid.t -> Cost.Cost_model.t) ->
  cap_of:(Lineage.Tid.t -> float) ->
  Relational.Database.t ->
  Relational.Eval.annotated ->
  (t * int list, string) result
(** [of_query_results ~theta ~beta ~cost_of ~cap_of db res] builds the
    instance the policy-evaluation component hands to strategy finding:
    results of [res] with confidence <= β become the instance's intermediate
    results; [required] defaults to [⌈θ*n⌉ - satisfied] where [n] counts all
    results (the paper's [(θ - θ′)*n]), clamped to the number of failing
    results.  Also returns the indices (into [res.rows]) of the failing
    rows, in instance order.

    [conf_of] overrides how each row's current confidence is obtained
    (default: {!Lineage.Prob.confidence} against [db]) — the serving
    pipeline passes its per-epoch confidence-cache lookup here so
    problem construction reuses the values the policy filter just
    computed.  The override must return exactly what the default would
    (it is a cache, not an approximation); feasibility classification
    depends on it. *)

(** {1 Accessors} *)

val beta : t -> float
val required : t -> int
val delta : t -> float

val incremental : t -> bool
(** Whether the incremental-evaluation machinery (dedup classes + affine
    caches in {!State}) is enabled for this instance. *)

val num_bases : t -> int
val num_results : t -> int
val base : t -> int -> base
val result : t -> int -> result_tuple
val bases : t -> base array
val results : t -> result_tuple array

val bid_of_tid : t -> Lineage.Tid.t -> int option
val results_of_base : t -> int -> int list
(** Results whose lineage mentions the base (the inverted index driving
    incremental re-evaluation). *)

val bases_of_result : t -> int -> int list

(** {1 Evaluation classes}

    Structurally equal lineage formulas (self-joins, grouped outputs) are
    deduplicated at {!make} time into shared evaluation classes: one
    compiled evaluator per class, shared by every member result.  With
    [~incremental:false] the mapping is the identity ([cid = rid]). *)

val num_classes : t -> int

val class_of_result : t -> int -> int
(** Class of a result ([rid -> cid]). *)

val class_members : t -> int -> int list
(** Member results of a class, ascending rids (never empty). *)

val classes_of_base : t -> int -> int list
(** Classes whose formula mentions the base — the class-level inverted
    index driving incremental re-evaluation (every member of each listed
    class is affected). *)

val bases_of_class : t -> int -> int list
(** Bases mentioned by the class formula, ascending bids. *)

val dedup_formulas : t -> int
(** Number of results that share another result's class
    ([num_results - num_classes]; [0] when [incremental] is off). *)

val evaluator_kind : t -> int -> string
(** [evaluator_kind t cid] names the compiled evaluator backing class
    [cid] — ["read_once"], ["circuit"], ["obdd"] or ["shannon"] —
    observability for the bench panel and tests.  ["circuit"] appears
    only when {!Lineage.Circuit.enabled} held at {!make} time and the
    class compiled within the node cap. *)

val eval_class : t -> float array -> int -> float
(** [eval_class t levels cid] evaluates one class's compiled formula over
    the bid-indexed level array.  One call covers every member result. *)

val eval_result : t -> float array -> int -> float
(** [eval_result t levels rid] is the confidence of result [rid] when base
    [bid] has confidence [levels.(bid)].  Formulas are compiled once at
    {!make} time: read-once lineage evaluates in linear time directly over
    the array; entangled lineage falls back to exact Shannon expansion.
    This is the hot path of every solver; equals
    [eval_class t levels (class_of_result t rid)]. *)

val grid_levels : t -> int -> float list
(** [grid_levels t bid] is the increasing list of confidence levels the
    grid allows for [bid]: [p0; p0+δ; …] ending exactly at [cap]. *)

val to_string : t -> string
(** One-line summary: sizes, β, required, δ. *)
