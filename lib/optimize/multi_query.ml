module Tid = Lineage.Tid

type t = {
  queries : Problem.t array;
  tids : Tid.t array; (* distinct base tuples, in first-seen order *)
  info : Problem.base array; (* representative record per distinct base *)
  locations : (int * int) list array; (* global idx -> (query, bid) *)
  delta : float;
}

let ( let* ) = Result.bind

let same_cost a b = Cost.Cost_model.shape a = Cost.Cost_model.shape b

let combine instances =
  let* () = if instances = [] then Error "no instances" else Ok () in
  let queries = Array.of_list instances in
  let delta = Problem.delta queries.(0) in
  let* () =
    if
      Array.for_all
        (fun q -> Float.abs (Problem.delta q -. delta) < 1e-12)
        queries
    then Ok ()
    else Error "instances disagree on delta"
  in
  let index : int Tid.Table.t = Tid.Table.create 64 in
  let info_tbl : (int, Problem.base) Hashtbl.t = Hashtbl.create 64 in
  let locs_tbl : (int, (int * int) list) Hashtbl.t = Hashtbl.create 64 in
  let count = ref 0 in
  let add qi bid (b : Problem.base) =
    match Tid.Table.find_opt index b.Problem.tid with
    | Some g ->
      let existing = Hashtbl.find info_tbl g in
      if
        Float.abs (existing.Problem.p0 -. b.Problem.p0) > 1e-12
        || Float.abs (existing.Problem.cap -. b.Problem.cap) > 1e-12
        || not (same_cost existing.Problem.cost b.Problem.cost)
      then
        failwith
          (Printf.sprintf "base %s differs between queries"
             (Tid.to_string b.Problem.tid))
      else Hashtbl.replace locs_tbl g ((qi, bid) :: Hashtbl.find locs_tbl g)
    | None ->
      let g = !count in
      Tid.Table.add index b.Problem.tid g;
      incr count;
      Hashtbl.add info_tbl g b;
      Hashtbl.add locs_tbl g [ (qi, bid) ]
  in
  try
    Array.iteri
      (fun qi q ->
        Array.iteri (fun bid b -> add qi bid b) (Problem.bases q))
      queries;
    let n = !count in
    Ok
      {
        queries;
        tids = Array.init n (fun g -> (Hashtbl.find info_tbl g).Problem.tid);
        info = Array.init n (fun g -> Hashtbl.find info_tbl g);
        locations = Array.init n (fun g -> List.rev (Hashtbl.find locs_tbl g));
        delta;
      }
  with Failure msg -> Error msg

let num_queries t = Array.length t.queries
let num_bases t = Array.length t.tids

type outcome = {
  solution : (Tid.t * float) list;
  cost : float;
  satisfied_per_query : int list;
  feasible : bool;
  iterations : int;
  evals : State.evals;
}

let solve ?(two_phase = true) t =
  let states = Array.map State.create t.queries in
  let ng = num_bases t in
  let level = Array.map (fun b -> b.Problem.p0) t.info in
  let all_satisfied () =
    Array.for_all2
      (fun q st -> State.satisfied_count st >= Problem.required q)
      t.queries states
  in
  let set_global g p =
    level.(g) <- p;
    List.iter (fun (qi, bid) -> State.set_base states.(qi) bid p) t.locations.(g)
  in
  (* joint gain*: sum of per-query unsatisfied-result confidence gains per
     unit cost of one delta step *)
  let gain g =
    let b = t.info.(g) in
    let cur = level.(g) in
    let target = Float.min b.Problem.cap (cur +. t.delta) in
    if target <= cur +. 1e-12 then 0.0
    else begin
      let dcost = Cost.Cost_model.eval b.Problem.cost ~from_:cur ~to_:target in
      if dcost <= 0.0 || dcost = infinity then 0.0
      else begin
        let sum = ref 0.0 in
        List.iter
          (fun (qi, bid) ->
            let st = states.(qi) in
            let q = t.queries.(qi) in
            if State.satisfied_count st < Problem.required q then
              List.iter
                (fun rid ->
                  if not (State.is_satisfied st rid) then begin
                    let f =
                      State.confidence_with_override st ~rid ~bid ~level:target
                    in
                    sum := !sum +. (f -. State.result_confidence st rid)
                  end)
                (Problem.results_of_base q bid))
          t.locations.(g);
        !sum /. dcost
      end
    end
  in
  let last_gain = Array.make ng 0.0 in
  let iterations = ref 0 in
  let feasible = ref true in
  while (not (all_satisfied ())) && !feasible do
    let best = ref (-1) and best_gain = ref 0.0 in
    for g = 0 to ng - 1 do
      let gg = gain g in
      if gg > !best_gain then begin
        best := g;
        best_gain := gg
      end
    done;
    if !best < 0 then feasible := false
    else begin
      let b = t.info.(!best) in
      set_global !best (Float.min b.Problem.cap (level.(!best) +. t.delta));
      last_gain.(!best) <- !best_gain;
      incr iterations
    end
  done;
  (* phase 2: rollback in ascending last-gain order while every query stays
     satisfied *)
  if two_phase && !feasible then begin
    let raised =
      List.filter
        (fun g -> level.(g) > t.info.(g).Problem.p0 +. 1e-12)
        (List.init ng Fun.id)
    in
    let order =
      List.stable_sort
        (fun a b -> Float.compare last_gain.(a) last_gain.(b))
        raised
    in
    List.iter
      (fun g ->
        let b = t.info.(g) in
        let continue_ = ref true in
        while !continue_ && all_satisfied () do
          let next = level.(g) -. t.delta in
          if next <= b.Problem.p0 +. 1e-12 then begin
            if level.(g) > b.Problem.p0 then begin
              set_global g b.Problem.p0;
              if not (all_satisfied ()) then set_global g (b.Problem.p0 +. t.delta)
            end;
            continue_ := false
          end
          else begin
            set_global g next;
            if not (all_satisfied ()) then begin
              set_global g (next +. t.delta);
              continue_ := false
            end
          end
        done)
      order
  end;
  let cost =
    Array.to_list t.info
    |> List.mapi (fun g b ->
           Cost.Cost_model.eval b.Problem.cost ~from_:b.Problem.p0 ~to_:level.(g))
    |> List.fold_left ( +. ) 0.0
  in
  let solution =
    List.filter_map
      (fun g ->
        if level.(g) > t.info.(g).Problem.p0 +. 1e-12 then
          Some (t.tids.(g), level.(g))
        else None)
      (List.init ng Fun.id)
  in
  {
    solution;
    cost;
    satisfied_per_query =
      Array.to_list (Array.map State.satisfied_count states);
    feasible = !feasible && all_satisfied ();
    iterations = !iterations;
    evals =
      Array.fold_left
        (fun acc st -> State.add_evals acc (State.evals st))
        State.no_evals states;
  }
