type algorithm =
  | Heuristic of Heuristic.config
  | Greedy of Greedy.config
  | Divide_conquer of Divide_conquer.config
  | Annealing of Annealing.config

let heuristic = Heuristic Heuristic.default_config

(* initial_bound = None is replaced by the greedy cost at solve time *)
let heuristic_seeded =
  Heuristic { Heuristic.default_config with initial_bound = Some nan }

let greedy = Greedy Greedy.default_config

let divide_conquer = Divide_conquer Divide_conquer.default_config

let annealing = Annealing Annealing.default_config

let algorithm_name = function
  | Heuristic { initial_bound = Some _; _ } -> "heuristic(seeded)"
  | Heuristic _ -> "heuristic"
  | Greedy { two_phase; selection; _ } ->
    Printf.sprintf "greedy(%s%s)"
      (if two_phase then "two-phase" else "one-phase")
      (match selection with
      | Greedy.Full_rescan -> ""
      | Greedy.Incremental -> ", incremental")
  | Divide_conquer _ -> "divide-and-conquer"
  | Annealing _ -> "simulated-annealing"

type stats =
  | Heuristic_stats of Heuristic.stats
  | Greedy_stats of Greedy.stats
  | Divide_conquer_stats of Divide_conquer.stats
  | Annealing_stats of Annealing.stats

(* trailing incremental-evaluation fields shared by every algorithm *)
let eval_fields (e : State.evals) dedup =
  [
    ("incremental_evals", float_of_int e.State.incremental_evals);
    ("full_evals", float_of_int e.State.full_evals);
    ("coeff_invalidations", float_of_int e.State.coeff_invalidations);
    ("dedup_formulas", float_of_int dedup);
  ]

let stats_fields = function
  | Heuristic_stats s ->
    [
      ("nodes", float_of_int s.Heuristic.nodes);
      ("bound_updates", float_of_int s.Heuristic.bound_updates);
      ("incumbent_prunes", float_of_int s.Heuristic.incumbent_prunes);
      ("h1_ordered", if s.Heuristic.h1_ordered then 1.0 else 0.0);
      ("h2_prunes", float_of_int s.Heuristic.h2_prunes);
      ("h3_prunes", float_of_int s.Heuristic.h3_prunes);
      ("h4_prunes", float_of_int s.Heuristic.h4_prunes);
      ("budget_exhausted", if s.Heuristic.budget_exhausted then 1.0 else 0.0);
    ]
    @ eval_fields s.Heuristic.evals s.Heuristic.dedup_formulas
  | Greedy_stats s ->
    [
      ("iterations", float_of_int s.Greedy.iterations);
      ("rollbacks", float_of_int s.Greedy.rollbacks);
      ("gain_evaluations", float_of_int s.Greedy.gain_evaluations);
      ("heap_pushes", float_of_int s.Greedy.heap_pushes);
      ("stale_pops", float_of_int s.Greedy.stale_pops);
    ]
    @ eval_fields s.Greedy.evals s.Greedy.dedup_formulas
  | Divide_conquer_stats s ->
    [
      ("groups", float_of_int s.Divide_conquer.num_groups);
      ("heuristic_groups", float_of_int s.Divide_conquer.heuristic_groups);
      ("rollbacks", float_of_int s.Divide_conquer.rollbacks);
      ("largest_group", float_of_int s.Divide_conquer.largest_group);
      ("smallest_group", float_of_int s.Divide_conquer.smallest_group);
      ("mean_group_size", s.Divide_conquer.mean_group_size);
      ("repair_iterations", float_of_int s.Divide_conquer.repair_iterations);
      ("swaps_applied", float_of_int s.Divide_conquer.swaps_applied);
    ]
    @ eval_fields s.Divide_conquer.evals s.Divide_conquer.dedup_formulas
  | Annealing_stats s ->
    [
      ("accepted_moves", float_of_int s.Annealing.accepted_moves);
      ("rejected_moves", float_of_int s.Annealing.rejected_moves);
      ("uphill_accepts", float_of_int s.Annealing.uphill_accepts);
      ("restarts", float_of_int s.Annealing.restarts);
      ("final_temperature", s.Annealing.final_temperature);
    ]
    @ eval_fields s.Annealing.evals s.Annealing.dedup_formulas

let render_stats stats =
  let fields =
    String.concat " "
      (List.map
         (fun (k, v) ->
           if Float.is_integer v && Float.abs v < 1e15 then
             Printf.sprintf "%s=%d" k (int_of_float v)
           else Printf.sprintf "%s=%g" k v)
         (stats_fields stats))
  in
  (* the one non-numeric field: why the search stopped early, if it did *)
  match stats with
  | Heuristic_stats { Heuristic.stop_reason = Some r; _ } ->
    Printf.sprintf "%s stop_reason=%S" fields r
  | _ -> fields

type resolution = Complete | Partial of { reason : string }

type outcome = {
  solution : (Lineage.Tid.t * float) list option;
  cost : float;
  satisfied : int list;
  optimal : bool;
  resolution : resolution;
  elapsed_s : float;
  stats : stats;
  detail : string;
}

let satisfied_of_solution problem solution =
  let st = State.create problem in
  List.iter
    (fun (tid, level) ->
      match Problem.bid_of_tid problem tid with
      | Some bid -> State.set_base st bid level
      | None -> ())
    solution;
  State.satisfied_results st

let resolution_of_stopped = function
  | None -> Complete
  | Some reason -> Partial { reason }

let solve ?(algorithm = divide_conquer) ?obs ?jobs ?pool ?now
    ?(deadline = Resilience.Deadline.never) problem =
  let metrics = Option.map (fun (o : Obs.t) -> o.Obs.metrics) obs in
  let jobs =
    match pool with
    | Some p -> Exec.Pool.jobs p
    | None -> Exec.resolve_jobs ?jobs ()
  in
  (* Only divide-and-conquer has a parallel phase; run it under a
     [parallel] span recording the requested jobs and, post-join, the
     number of chunks (partition groups) the work was split into. *)
  let solve_dnc cfg =
    let run_groups pool =
      Obs.span obs
        ~attrs:[ ("jobs", string_of_int jobs) ]
        "parallel"
        (fun () ->
          (* capture the open [parallel] span: the group task spans are
             stitched under it after the join *)
          let fork = Obs.fork obs in
          let out =
            Divide_conquer.solve ~config:cfg ?metrics ?fork ?pool ?now
              ~deadline problem
          in
          Obs.add_attr obs "chunks"
            (string_of_int out.Divide_conquer.num_groups);
          out)
    in
    match pool with
    | Some _ -> run_groups pool
    | None when jobs > 1 ->
      Exec.Pool.with_pool ~jobs (fun p -> run_groups (Some p))
    | None -> run_groups None
  in
  let run () =
    match algorithm with
    | Heuristic cfg ->
      let cfg =
        match cfg.Heuristic.initial_bound with
        | Some b when Float.is_nan b ->
          (* seeded variant: run greedy first for the upper bound (the
             shared deadline covers both runs) *)
          let g = Greedy.solve ?metrics ~deadline problem in
          {
            cfg with
            Heuristic.initial_bound =
              (if g.Greedy.feasible then Some g.Greedy.cost else None);
          }
        | _ -> cfg
      in
      let out = Heuristic.solve ~config:cfg ?metrics ~deadline problem in
      let satisfied =
        match out.Heuristic.solution with
        | Some s -> satisfied_of_solution problem s
        | None -> []
      in
      let stats = Heuristic_stats out.Heuristic.stats in
      {
        solution = out.Heuristic.solution;
        cost = out.Heuristic.cost;
        satisfied;
        optimal = out.Heuristic.optimal && out.Heuristic.solution <> None;
        resolution = resolution_of_stopped out.Heuristic.stopped;
        elapsed_s = 0.0;
        stats;
        detail = render_stats stats;
      }
    | Greedy cfg ->
      let out = Greedy.solve ~config:cfg ?metrics ~deadline problem in
      let stats = Greedy_stats out.Greedy.stats in
      {
        solution = (if out.Greedy.feasible then Some out.Greedy.solution else None);
        cost = (if out.Greedy.feasible then out.Greedy.cost else infinity);
        satisfied = out.Greedy.satisfied;
        optimal = false;
        resolution = resolution_of_stopped out.Greedy.stopped;
        elapsed_s = 0.0;
        stats;
        detail = render_stats stats;
      }
    | Divide_conquer cfg ->
      let out = solve_dnc cfg in
      let stats = Divide_conquer_stats out.Divide_conquer.stats in
      {
        solution =
          (if out.Divide_conquer.feasible then Some out.Divide_conquer.solution
           else None);
        cost =
          (if out.Divide_conquer.feasible then out.Divide_conquer.cost
           else infinity);
        satisfied = out.Divide_conquer.satisfied;
        optimal = false;
        resolution = resolution_of_stopped out.Divide_conquer.stopped;
        elapsed_s = 0.0;
        stats;
        detail = render_stats stats;
      }
    | Annealing cfg ->
      let out = Annealing.solve ~config:cfg ?metrics ~deadline problem in
      let stats = Annealing_stats out.Annealing.stats in
      {
        solution =
          (if out.Annealing.feasible then Some out.Annealing.solution else None);
        cost = (if out.Annealing.feasible then out.Annealing.cost else infinity);
        satisfied = out.Annealing.satisfied;
        optimal = false;
        resolution = resolution_of_stopped out.Annealing.stopped;
        elapsed_s = 0.0;
        stats;
        detail = render_stats stats;
      }
  in
  let t0 = Unix.gettimeofday () in
  let outcome =
    Obs.span obs
      ~attrs:[ ("algorithm", algorithm_name algorithm) ]
      "solve"
      (fun () ->
        let out = run () in
        (match out.resolution with
        | Complete -> ()
        | Partial { reason } ->
          Obs.add_attr obs "resolution" (Printf.sprintf "partial: %s" reason);
          match metrics with
          | None -> ()
          | Some m -> Obs.Metrics.incr m "resilience.solver_partial");
        out)
  in
  { outcome with elapsed_s = Unix.gettimeofday () -. t0 }
