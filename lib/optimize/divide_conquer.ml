module Tid = Lineage.Tid

type quota = Min_x_y | Proportional

type config = {
  partition : Partition.config;
  tau : int;
  greedy : Greedy.config;
  heuristic_max_nodes : int option;
  quota : quota;
}

let default_config =
  {
    partition = Partition.default_config;
    tau = 12;
    greedy = Greedy.default_config;
    heuristic_max_nodes = Some 50_000;
    quota = Proportional;
  }

type stats = {
  num_groups : int;
  heuristic_groups : int;
  rollbacks : int;
  largest_group : int;  (** bases in the biggest partition group *)
  smallest_group : int;
  mean_group_size : float;
  repair_iterations : int;  (** greedy increments spent closing the quota gap *)
  swaps_applied : int;  (** local-search group replacements kept *)
  evals : State.evals;  (** group sub-solves plus the global combine state *)
  dedup_formulas : int;  (** of the global instance *)
}

let empty_stats =
  {
    num_groups = 0;
    heuristic_groups = 0;
    rollbacks = 0;
    largest_group = 0;
    smallest_group = 0;
    mean_group_size = 0.0;
    repair_iterations = 0;
    swaps_applied = 0;
    evals = State.no_evals;
    dedup_formulas = 0;
  }

type outcome = {
  solution : (Tid.t * float) list;
  cost : float;
  satisfied : int list;
  feasible : bool;
  stopped : string option;
  num_groups : int;
  heuristic_groups : int;
  rollbacks : int;
  stats : stats;
}

(* Build the sub-instance of one partition group.

   The per-group quota decides how many of the group's [x] results the
   sub-solver must satisfy.  The paper's rule is [min x y] (y = the global
   requirement), which over-satisfies massively when groups are small and
   numerous -- every result of every group gets fixed, and the refinement
   can only undo so much.  The default [Proportional] quota asks each group
   for its fair share [ceil (x * y / n)] of the global requirement and lets
   a global greedy repair pass make up any shortfall; the benches ablate
   both (see DESIGN.md). *)
let subproblem config problem members group_bids =
  let bases = List.map (Problem.base problem) group_bids in
  let formulas =
    List.map (fun rid -> (Problem.result problem rid).Problem.formula) members
  in
  let x = List.length members in
  let y = Problem.required problem in
  let n = Problem.num_results problem in
  let required =
    match config.quota with
    | Min_x_y -> min x y
    | Proportional ->
      if n = 0 then 0
      else
        min x
          (int_of_float
             (ceil (float_of_int x *. float_of_int y /. float_of_int n)))
  in
  Problem.make_exn
    ~delta:(Problem.delta problem)
    ~incremental:(Problem.incremental problem)
    ~beta:(Problem.beta problem)
    ~required ~bases ~formulas ()

(* Phase-2 style rollback on the combined global state: walk raised bases
   in ascending current-gain* order and undo increments that are not
   needed to keep [required] results satisfied. *)
let refine deadline st =
  let problem = State.problem st in
  let required = Problem.required problem in
  let delta = Problem.delta problem in
  let raised = State.raised_bases st in
  let keyed =
    List.map (fun bid -> (State.gain st bid ~only_unsatisfied:false delta, bid)) raised
  in
  let order =
    List.map snd (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) keyed)
  in
  let rollbacks = ref 0 in
  List.iter
    (fun bid ->
      let continue_ = ref true in
      (* rollback only strips redundant increments, so stopping on expiry
         keeps the solution feasible *)
      while
        !continue_
        && State.satisfied_count st >= required
        && not (Resilience.Deadline.expired deadline)
      do
        Resilience.Deadline.tick deadline;
        if State.lower_by_delta st bid then
          if State.satisfied_count st < required then begin
            ignore (State.raise_by_delta st bid);
            continue_ := false
          end
          else incr rollbacks
        else continue_ := false
      done)
    order;
  !rollbacks

(* One partition group solved end to end.  Each invocation builds its own
   sub-problem, its own solver state, and (when the caller records
   metrics) its own private registry — nothing here touches shared mutable
   state, which is what lets the groups run on separate domains with
   bit-identical results to the sequential order. *)
type group_outcome = {
  g_cost : float;
  g_members : int list;
  g_solution : (Tid.t * float) list;
  g_heuristic : bool;  (** the branch-and-bound refinement ran *)
  g_metrics : Obs.Metrics.t option;
  g_spans : Obs.Trace.span list;
      (** completed task spans, stitched under the caller post-join *)
  g_evals : State.evals;  (** greedy + branch-and-bound sub-solve evals *)
}

let solve_group config problem parts ~with_metrics ~fork ~now ~deadline gid
    members =
  let metrics = if with_metrics then Some (Obs.Metrics.create ()) else None in
  let t0 = match now with Some clock -> clock () | None -> 0.0 in
  let group_bids = parts.Partition.group_bases.(gid) in
  (* the whole group solve runs inside one per-task span (recorded into a
     private subtracer, safe on any domain); the spans come back in the
     outcome and the orchestrator stitches them in group order *)
  let out, g_spans =
    Obs.task fork
      ~attrs:
        [
          ("group", string_of_int gid);
          ("bases", string_of_int (List.length group_bids));
          ("results", string_of_int (List.length members));
        ]
      "group"
      (fun sub_trace ->
        let sub_span name f =
          match sub_trace with
          | Some tr -> Obs.Trace.span tr name f
          | None -> f ()
        in
        let sub = subproblem config problem members group_bids in
        let greedy_out =
          sub_span "greedy" (fun () ->
              Greedy.solve ~config:config.greedy ?metrics ~deadline sub)
        in
        let g_heuristic = List.length group_bids < config.tau in
        let g_solution, g_cost, g_evals =
          if g_heuristic then begin
            let bound =
              if greedy_out.Greedy.feasible then Some greedy_out.Greedy.cost
              else None
            in
            let h_out =
              sub_span "heuristic" (fun () ->
                  Heuristic.solve
                    ~config:
                      {
                        Heuristic.heuristics = Heuristic.all_heuristics;
                        initial_bound = bound;
                        max_nodes = config.heuristic_max_nodes;
                      }
                    ?metrics ~deadline sub)
            in
            let evals =
              State.add_evals greedy_out.Greedy.stats.Greedy.evals
                h_out.Heuristic.stats.Heuristic.evals
            in
            match h_out.Heuristic.solution with
            | Some s when h_out.Heuristic.cost < greedy_out.Greedy.cost ->
              (s, h_out.Heuristic.cost, evals)
            | _ -> (greedy_out.Greedy.solution, greedy_out.Greedy.cost, evals)
          end
          else
            ( greedy_out.Greedy.solution,
              greedy_out.Greedy.cost,
              greedy_out.Greedy.stats.Greedy.evals )
        in
        (g_solution, g_cost, g_heuristic, g_evals))
  in
  let g_solution, g_cost, g_heuristic, g_evals = out in
  (match (now, metrics) with
  | Some clock, Some m ->
    Obs.Metrics.observe m "dnc.group_solve_s" (clock () -. t0)
  | _ -> ());
  {
    g_cost;
    g_members = members;
    g_solution;
    g_heuristic;
    g_metrics = metrics;
    g_spans;
    g_evals;
  }

let solve ?(config = default_config) ?metrics ?fork ?pool ?now
    ?(deadline = Resilience.Deadline.never) problem =
  let parts = Partition.partition ~config:config.partition problem in
  let num_groups = Partition.num_groups parts in
  let group_sizes =
    Array.map (fun bids -> List.length bids) parts.Partition.group_bases
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Array.iter
      (fun size -> Obs.Metrics.observe m "dnc.group_size" (float_of_int size))
      group_sizes);
  (* Carve the remaining budget into one independent sub-token per group
     *before* the fan-out: each group's cut point is then a function of
     its own share, never of how groups were scheduled across domains, so
     logical-budget runs stay bit-identical at any jobs level. *)
  let subs =
    if num_groups > 0 then Resilience.Deadline.split deadline num_groups
    else [||]
  in
  let solve_group gid members =
    solve_group config problem parts ~with_metrics:(metrics <> None) ~fork ~now
      ~deadline:subs.(gid) gid members
  in
  let group_outcomes =
    match pool with
    | Some pool when Exec.Pool.jobs pool > 1 ->
      (* chunk = 1: groups are heavy and uneven, claim them one by one *)
      Exec.Pool.mapi_array ~chunk:1 pool solve_group parts.Partition.groups
    | _ -> Array.mapi solve_group parts.Partition.groups
  in
  Resilience.Deadline.absorb deadline subs;
  (* graft the per-group task spans under the caller's open span, in
     group order: the stitched tree is then identical at any jobs level *)
  Obs.stitch fork (Array.map (fun g -> g.g_spans) group_outcomes);
  let groups_stopped = Array.exists Resilience.Deadline.expired subs in
  (* deterministic post-join aggregation: fold the per-group registries
     into the caller's in group order, count refinements in group order *)
  (match metrics with
  | None -> ()
  | Some m ->
    Array.iter
      (fun g ->
        match g.g_metrics with
        | Some gm -> Obs.Metrics.merge ~into:m gm
        | None -> ())
      group_outcomes);
  let heuristic_groups = ref 0 in
  Array.iter
    (fun g -> if g.g_heuristic then incr heuristic_groups)
    group_outcomes;
  (* per-group solutions: (cost, members, increments) *)
  let group_solutions =
    Array.map (fun g -> (g.g_cost, g.g_members, g.g_solution)) group_outcomes
  in
  (* combination on the global instance: overlapping bases take the max
     target across groups *)
  let st = State.create problem in
  let kept = Array.make num_groups true in
  (* which groups raise which base, and to what level *)
  let contributions : (int * float) list Tid.Table.t = Tid.Table.create 256 in
  Array.iteri
    (fun gid (_, _, solution) ->
      List.iter
        (fun (tid, level) ->
          let prior =
            Option.value ~default:[] (Tid.Table.find_opt contributions tid)
          in
          Tid.Table.replace contributions tid ((gid, level) :: prior))
        solution)
    group_solutions;
  (* set one base to the max target over kept groups *)
  let sync_base tid =
    match Problem.bid_of_tid problem tid with
    | None -> ()
    | Some bid ->
      let b = Problem.base problem bid in
      let target =
        List.fold_left
          (fun acc (gid, level) ->
            if kept.(gid) then Float.max acc level else acc)
          b.Problem.p0
          (Option.value ~default:[] (Tid.Table.find_opt contributions tid))
      in
      if Float.abs (State.base_level st bid -. target) > 1e-12 then
        State.set_base st bid target
  in
  Tid.Table.iter (fun tid _ -> sync_base tid) contributions;
  (* group-level refinement: drop whole group solutions, most expensive per
     member result first, while the requirement stays satisfied.  Because
     the solved groups jointly over-satisfy (each solves min(x, required)
     results), most of them are redundant; dropping at group granularity
     matches the per-group structure of the increments, which blind
     per-base rollback cannot recover. *)
  let required = Problem.required problem in
  let order =
    List.sort
      (fun a b ->
        let cost_per (c, m, _) = c /. float_of_int (max 1 (List.length m)) in
        Float.compare
          (cost_per group_solutions.(b))
          (cost_per group_solutions.(a)))
      (List.init num_groups Fun.id)
  in
  List.iter
    (fun gid ->
      let cost, _, solution = group_solutions.(gid) in
      if
        cost > 0.0 && solution <> []
        && State.satisfied_count st > required
        && not (Resilience.Deadline.expired deadline)
      then begin
        Resilience.Deadline.tick deadline;
        kept.(gid) <- false;
        List.iter (fun (tid, _) -> sync_base tid) solution;
        if State.satisfied_count st < required then begin
          kept.(gid) <- true;
          List.iter (fun (tid, _) -> sync_base tid) solution
        end
      end)
    order;
  (* repair: proportional quotas may leave the global requirement slightly
     short; finish with the greedy on the combined state *)
  let repair_config =
    { config.greedy with Greedy.selection = Greedy.Incremental }
  in
  let repair_iterations = ref 0 in
  (* evals the repair greedy already reported to [metrics] (deltas per
     [solve_state] call), so the final emission below does not recount them *)
  let repair_evals = ref State.no_evals in
  if State.satisfied_count st < Problem.required problem then begin
    let out = Greedy.solve_state ~config:repair_config ?metrics ~deadline st in
    repair_iterations := !repair_iterations + out.Greedy.iterations;
    repair_evals := State.add_evals !repair_evals out.Greedy.stats.Greedy.evals
  end;
  (* swap local search: partition-local quotas can strand effort in groups
     whose results are expensive to lift.  Tentatively zero out the worst
     cost-per-result group solutions one at a time, let the global greedy
     repair the shortfall wherever it is cheapest, and keep the move only
     when the total cost drops. *)
  let trials = min 20 num_groups in
  let by_realized_cost =
    List.filter
      (fun gid ->
        let c, _, s = group_solutions.(gid) in
        kept.(gid) && c > 0.0 && s <> [])
      (List.init num_groups Fun.id)
    |> List.sort (fun a b ->
           let cost_per (c, m, _) = c /. float_of_int (max 1 (List.length m)) in
           Float.compare
             (cost_per group_solutions.(b))
             (cost_per group_solutions.(a)))
  in
  let swaps_applied = ref 0 in
  let rec swap_loop tried = function
    | [] -> ()
    | gid :: rest
      when tried < trials && not (Resilience.Deadline.expired deadline) ->
      let _, _, solution = group_solutions.(gid) in
      let before_cost = State.cost st in
      let saved = State.snapshot st in
      kept.(gid) <- false;
      List.iter (fun (tid, _) -> sync_base tid) solution;
      if State.satisfied_count st < Problem.required problem then begin
        let out = Greedy.solve_state ~config:repair_config ?metrics ~deadline st in
        repair_iterations := !repair_iterations + out.Greedy.iterations;
        repair_evals :=
          State.add_evals !repair_evals out.Greedy.stats.Greedy.evals
      end;
      if
        State.satisfied_count st >= Problem.required problem
        && State.cost st < before_cost -. 1e-9
      then begin
        incr swaps_applied;
        swap_loop (tried + 1) rest
      end
      else begin
        kept.(gid) <- true;
        State.restore st saved;
        swap_loop (tried + 1) rest
      end
    | _ -> ()
  in
  swap_loop 0 by_realized_cost;
  (* final polish: the paper's per-base delta rollback *)
  let rollbacks = refine deadline st in
  let stopped =
    if Resilience.Deadline.expired deadline then
      Some (Resilience.Deadline.reason deadline)
    else if groups_stopped then
      (* a per-group share ran out even though the parent still has
         budget (integer division of the remainder) *)
      Some
        (match
           Array.to_list subs
           |> List.find_opt Resilience.Deadline.expired
         with
        | Some sub -> Resilience.Deadline.reason sub
        | None -> "group budget exhausted")
    else None
  in
  (* total evals: group sub-solves plus everything on the global combine
     state (whose lifetime counters already include the repair passes) *)
  let group_evals =
    Array.fold_left
      (fun acc g -> State.add_evals acc g.g_evals)
      State.no_evals group_outcomes
  in
  let evals = State.add_evals group_evals (State.evals st) in
  let stats =
    {
      num_groups;
      heuristic_groups = !heuristic_groups;
      rollbacks;
      largest_group = Array.fold_left max 0 group_sizes;
      smallest_group =
        (if num_groups = 0 then 0 else Array.fold_left min max_int group_sizes);
      mean_group_size =
        (if num_groups = 0 then 0.0
         else
           float_of_int (Array.fold_left ( + ) 0 group_sizes)
           /. float_of_int num_groups);
      repair_iterations = !repair_iterations;
      swaps_applied = !swaps_applied;
      evals;
      dedup_formulas = Problem.dedup_formulas problem;
    }
  in
  (match metrics with
  | None -> ()
  | Some m ->
    Obs.Metrics.incr m ~by:num_groups "dnc.groups";
    Obs.Metrics.incr m ~by:!heuristic_groups "dnc.heuristic_groups";
    Obs.Metrics.incr m ~by:rollbacks "dnc.rollbacks";
    Obs.Metrics.incr m ~by:!repair_iterations "dnc.repair_iterations";
    Obs.Metrics.incr m ~by:!swaps_applied "dnc.swaps_applied";
    (* group registries (merged above) and the repair greedy already
       carry their own [state.*] increments; emit only the global combine
       state's remainder *)
    State.record_evals m (State.evals_since st !repair_evals);
    Obs.Metrics.observe m "problem.dedup_formulas"
      (float_of_int (Problem.dedup_formulas problem)));
  {
    solution = State.solution st;
    cost = State.cost st;
    satisfied = State.satisfied_results st;
    feasible = State.satisfied_count st >= Problem.required problem;
    stopped;
    num_groups;
    heuristic_groups = !heuristic_groups;
    rollbacks;
    stats;
  }
