(** The heuristic branch-and-bound algorithm (§4.1 of the paper).

    Depth-first search over grid-discretized confidence assignments, one
    base tuple per tree level, trying values in increasing order starting
    from the tuple's current confidence.  A node whose partial assignment
    already satisfies [required] results is a solution (remaining tuples
    stay at their initial level); the cheapest solution found so far is the
    incumbent used for cost-bound pruning.

    The four domain heuristics are individually switchable, matching the
    paper's Fig. 11 (a)/(d) ablation:

    - {b H1} (ordering): sort base tuples in descending order of costβ —
      the minimum cost at which raising this tuple alone pushes at least
      one affected result above β (or, when unreachable, the cap cost
      scaled by β / Fmax).  Expensive tuples end up near the root, cheap
      ones near the leaves, so the leftmost descents find cheap incumbents
      quickly.
    - {b H2} (sibling pruning): once every result affected by the current
      tuple is already above β, higher values of this tuple are pointless —
      prune its right siblings.
    - {b H3} (infeasibility pruning): if raising all unassigned tuples to
      their caps still satisfies fewer than [required] results, prune the
      subtree.
    - {b H4} (cost-bound pruning): if the current cost plus the cheapest
      possible single future increment already exceeds the incumbent,
      prune.

    "Naive" (all four off) still prunes on the incumbent cost alone, as in
    the paper's baseline. *)

type heuristics = { h1 : bool; h2 : bool; h3 : bool; h4 : bool }

val all_heuristics : heuristics
val naive : heuristics
val only : [ `H1 | `H2 | `H3 | `H4 ] -> heuristics

type config = {
  heuristics : heuristics;
  initial_bound : float option;
      (** incumbent cost before the search starts, e.g. the greedy
          solution's cost (Fig. 11(d)); [None] = unbounded *)
  max_nodes : int option;
      (** stop after exploring this many nodes; the outcome is then marked
          non-optimal.  [None] = exhaustive. *)
}

val default_config : config
(** All heuristics on, no initial bound, no node limit. *)

type stats = {
  nodes : int;  (** search-tree nodes explored *)
  bound_updates : int;  (** times a cheaper incumbent replaced the bound *)
  incumbent_prunes : int;  (** subtrees cut by the always-on cost bound *)
  h1_ordered : bool;  (** H1 prunes nothing — it orders the search *)
  h2_prunes : int;  (** right-sibling cuts (all affected already above β) *)
  h3_prunes : int;  (** infeasible-subtree cuts *)
  h4_prunes : int;  (** cheapest-future-step cost-bound cuts *)
  budget_exhausted : bool;
      (** the [max_nodes] budget stopped the search (as opposed to a
          deadline, or running to completion) *)
  stop_reason : string option;
      (** why the search stopped early ([None] = ran to completion);
          mirrors [outcome.stopped] *)
  evals : State.evals;
      (** lineage-evaluation counters of the search state (H1/H3 scratch
          evaluations bypass the state and are not counted) *)
  dedup_formulas : int;  (** {!Problem.dedup_formulas} of the instance *)
}

val empty_stats : stats

type outcome = {
  solution : (Lineage.Tid.t * float) list option;
      (** [None] when no feasible assignment was found *)
  cost : float;  (** cost of [solution]; [infinity] when none *)
  optimal : bool;
      (** the search ran to completion (no [max_nodes] cutoff, no
          deadline expiry), so [solution] is a global optimum of the
          discretized problem *)
  stopped : string option;
      (** [Some reason] when the node budget or the caller's deadline cut
          the search short; [solution] is then the best incumbent found —
          feasible whenever non-[None] — i.e. an anytime partial answer *)
  nodes : int;  (** search-tree nodes explored (= [stats.nodes]) *)
  stats : stats;  (** per-heuristic telemetry for Fig. 11-style ablations *)
}

val compute_cost_beta : Problem.t -> int -> float
(** The H1 ordering key costβ of one base tuple (exposed for tests). *)

val solve :
  ?config:config ->
  ?metrics:Obs.Metrics.t ->
  ?deadline:Resilience.Deadline.t ->
  Problem.t ->
  outcome
(** [metrics], when given, also receives the same telemetry as
    [heuristic.*] counters and a [heuristic.nodes] histogram — useful when
    one registry aggregates over many solves (divide-and-conquer calls
    this per group).

    [deadline] (default {!Resilience.Deadline.never}) is ticked once per
    search node; on expiry the search stops at the next node and returns
    the incumbent with [stopped = Some reason].  With a logical budget
    the cut point — and hence the outcome — is deterministic. *)
