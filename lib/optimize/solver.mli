(** Uniform entry point over the three strategy-finding algorithms.

    Wraps {!Heuristic}, {!Greedy} and {!Divide_conquer} behind one
    algorithm type and one outcome type, with wall-clock timing — the shape
    the PCQE engine and the benchmarks consume. *)

type algorithm =
  | Heuristic of Heuristic.config
  | Greedy of Greedy.config
  | Divide_conquer of Divide_conquer.config
  | Annealing of Annealing.config
      (** extra randomized baseline, not in the paper (see {!Annealing}) *)

val heuristic : algorithm
(** All four heuristics, no bound, exhaustive. *)

val heuristic_seeded : algorithm
(** All four heuristics with the greedy cost as initial bound (computed
    internally before the search, as in Fig. 11(d)). *)

val greedy : algorithm
(** Two-phase greedy with the paper-faithful full-rescan selection. *)

val divide_conquer : algorithm

val annealing : algorithm

val algorithm_name : algorithm -> string

type stats =
  | Heuristic_stats of Heuristic.stats
  | Greedy_stats of Greedy.stats
  | Divide_conquer_stats of Divide_conquer.stats
  | Annealing_stats of Annealing.stats
      (** structured per-algorithm telemetry; what [detail] used to
          flatten into a string *)

val stats_fields : stats -> (string * float) list
(** Flat labeled numbers, for metrics sinks and the JSONL bench artifact
    (booleans become 0/1). *)

val render_stats : stats -> string
(** ["k1=v1 k2=v2 …"] — the human-readable one-liner.  The heuristic's
    [stop_reason], when present, is appended as a quoted
    [stop_reason="…"] field. *)

type resolution =
  | Complete  (** the algorithm ran to its natural end *)
  | Partial of { reason : string }
      (** a deadline or budget stopped it early; the outcome carries the
          best-so-far answer.  [solution], when [Some], is still {e
          feasible} — an infeasible best effort is reported as [None] —
          so a partial resolution degrades optimality, never
          compliance. *)

type outcome = {
  solution : (Lineage.Tid.t * float) list option;
      (** raised base tuples with target confidences; [None] if infeasible *)
  cost : float;  (** [infinity] when infeasible *)
  satisfied : int list;  (** rids satisfied under the solution *)
  optimal : bool;  (** guaranteed optimal on the δ-grid (heuristic only) *)
  resolution : resolution;
  elapsed_s : float;
  stats : stats;  (** structured solver telemetry *)
  detail : string;  (** [render_stats stats], kept for display call sites *)
}

val solve :
  ?algorithm:algorithm ->
  ?obs:Obs.t ->
  ?jobs:int ->
  ?pool:Exec.Pool.t ->
  ?now:(unit -> float) ->
  ?deadline:Resilience.Deadline.t ->
  Problem.t ->
  outcome
(** [solve problem] runs the chosen algorithm (default {!divide_conquer} —
    the paper's best scaling choice) and times it.  With [obs], the run is
    recorded as a ["solve"] span (attribute [algorithm]) and the solver's
    counters/histograms land in the registry — including the sub-solver
    telemetry divide-and-conquer generates per group.

    Parallelism (divide-and-conquer only; the other algorithms are
    inherently sequential and ignore it):

    - [pool]: run partition groups on this pool (caller keeps ownership);
    - [jobs]: otherwise, resolve a level via {!Exec.resolve_jobs} — an
      explicit [jobs] wins ([0] = auto), then the [PCQE_JOBS] environment
      variable, defaulting to [1] — and spin up a transient pool when it
      exceeds 1.

    The outcome is bit-identical at every parallelism level.  The
    parallel phase is recorded as a ["parallel"] span with attributes
    [jobs] and [chunks] (number of partition groups).  [now] (a wall
    clock) additionally enables the [dnc.group_solve_s] histogram; see
    {!Divide_conquer.solve}.

    [deadline] (default {!Resilience.Deadline.never}) makes the solve
    {e anytime}: each algorithm polls the token cooperatively and, on
    expiry, returns its best-so-far feasible solution with
    [resolution = Partial].  A logical-budget token gives bit-identical
    cut points at any [jobs] level (divide-and-conquer splits the budget
    per group up front); a wall-clock token bounds latency.  A partial
    solve bumps the [resilience.solver_partial] counter and tags the
    ["solve"] span with a [resolution] attribute. *)
