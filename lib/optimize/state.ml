module Tid = Lineage.Tid

type t = {
  problem : Problem.t;
  p : float array; (* current level per base *)
  conf : float array; (* cached confidence per result *)
  sat : bool array;
  mutable satisfied : int;
  (* cost accounting: per-base contributions are *replaced*, never
     delta-adjusted, so an infinite contribution (a logarithmic cost model
     at confidence 1) can be entered and left again without producing
     inf - inf = NaN *)
  cost_contrib : float array;
  mutable finite_cost : float;
  mutable infinite_contribs : int;
  (* Affine-coefficient caches (empty arrays when the problem opts out).
     Result confidence is multilinear in base levels under tuple
     independence, so for a fixed assignment of the other variables it is
     [a + b * x] in any one base's level.  Per class, one slot per
     variable of its formula (ascending bids), held in flat parallel
     arrays — the probe path is the solvers' innermost loop and must not
     allocate.  A slot is valid iff its snapshot equals
     [class_version - base_commits bid], the number of committed changes
     to the class's *other* variables since computation (the cached
     values only depend on those).

     Coefficients are filled *lazily from observed points*, so a miss
     costs one evaluation — never more than the non-incremental baseline
     pays for the same request: the first evaluation at level [x0] is
     cached as the point [(x0, f0)] ([coeff_b] = nan); a later request at
     a sufficiently different level completes the pair [(a, b)] from the
     two points, after which every request is a multiply-add. *)
  incremental : bool;
  class_version : int array; (* per class: committed changes to its vars *)
  base_commits : int array; (* per base: committed level changes *)
  coeff_bids : int array array; (* per class: its formula's bids, ascending *)
  coeff_a : float array array; (* intercept — or the point value while
                                  the slope is unknown *)
  coeff_b : float array array; (* slope; nan = point-only slot *)
  coeff_x : float array array; (* the point's level while point-only *)
  coeff_snap : int array array; (* validity snapshot; min_int = empty *)
  mutable probe_exact : bool; (* last class_conf_at came from the
                                 evaluator, not the cache *)
  mutable incremental_evals : int;
  mutable full_evals : int;
  mutable coeff_invalidations : int;
}

(* Results within [beta_eps] of the threshold are re-evaluated with the
   full compiled evaluator: the affine form agrees with it only to float
   tolerance, and the satisfied/unsatisfied decision (conf > beta) must be
   identical to the baseline's.  Away from the band, the affine error
   (~1e-13 at worst) cannot flip the strict comparison. *)
let beta_eps = 1e-9

(* Chaos-testable injection point, armed only by the fault suite: every
   full compiled-evaluator call models "the evaluator can raise". *)
let eval_fault () = Resilience.Fault.hit Resilience.Fault.site_state_eval

let eval_result st rid =
  eval_fault ();
  Problem.eval_result st.problem st.p rid

let eval_class_full st cid =
  eval_fault ();
  st.full_evals <- st.full_evals + 1;
  Problem.eval_class st.problem st.p cid

let create problem =
  let nb = Problem.num_bases problem and nr = Problem.num_results problem in
  let incremental = Problem.incremental problem in
  let nc = if incremental then Problem.num_classes problem else 0 in
  let coeff_bids =
    Array.init nc (fun cid ->
        Array.of_list (Problem.bases_of_class problem cid))
  in
  let st =
    {
      problem;
      p = Array.init nb (fun i -> (Problem.base problem i).Problem.p0);
      conf = Array.make nr 0.0;
      sat = Array.make nr false;
      satisfied = 0;
      cost_contrib = Array.make nb 0.0;
      finite_cost = 0.0;
      infinite_contribs = 0;
      incremental;
      class_version = Array.make nc 0;
      base_commits = Array.make (if incremental then nb else 0) 0;
      coeff_bids;
      coeff_a =
        Array.map (fun bids -> Array.make (Array.length bids) 0.0) coeff_bids;
      coeff_b =
        Array.map (fun bids -> Array.make (Array.length bids) 0.0) coeff_bids;
      coeff_x =
        Array.map (fun bids -> Array.make (Array.length bids) 0.0) coeff_bids;
      coeff_snap =
        Array.map
          (fun bids -> Array.make (Array.length bids) min_int)
          coeff_bids;
      probe_exact = false;
      incremental_evals = 0;
      full_evals = 0;
      coeff_invalidations = 0;
    }
  in
  let beta = Problem.beta problem in
  if incremental then
    (* one evaluation per class, shared by every member result *)
    for cid = 0 to Problem.num_classes problem - 1 do
      let c = eval_class_full st cid in
      let now_sat = c > beta in
      List.iter
        (fun rid ->
          st.conf.(rid) <- c;
          if now_sat then begin
            st.sat.(rid) <- true;
            st.satisfied <- st.satisfied + 1
          end)
        (Problem.class_members problem cid)
    done
  else
    for rid = 0 to nr - 1 do
      st.full_evals <- st.full_evals + 1;
      let c = eval_result st rid in
      st.conf.(rid) <- c;
      if c > beta then begin
        st.sat.(rid) <- true;
        st.satisfied <- st.satisfied + 1
      end
    done;
  st

let problem st = st.problem

let base_level st bid = st.p.(bid)

let set_result_conf st rid c =
  let beta = Problem.beta st.problem in
  st.conf.(rid) <- c;
  let now_sat = c > beta in
  if now_sat && not st.sat.(rid) then begin
    st.sat.(rid) <- true;
    st.satisfied <- st.satisfied + 1
  end
  else if (not now_sat) && st.sat.(rid) then begin
    st.sat.(rid) <- false;
    st.satisfied <- st.satisfied - 1
  end

let refresh_result st rid =
  st.full_evals <- st.full_evals + 1;
  set_result_conf st rid (eval_result st rid)

(* Index of [bid] in the ascending [bids] (the caller guarantees
   membership: [bid] is a variable of the class's formula). *)
let slot_of bids bid =
  let lo = ref 0 and hi = ref (Array.length bids - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) lsr 1 in
    if bids.(mid) < bid then lo := mid + 1 else hi := mid
  done;
  !lo

let eval_pinned st cid bid x =
  let saved = st.p.(bid) in
  st.p.(bid) <- x;
  match eval_class_full st cid with
  | f ->
    st.p.(bid) <- saved;
    f
  | exception e ->
    st.p.(bid) <- saved;
    raise e

(* Levels closer than [point_eps] are served from the cached point: the
   slope is at most 1 in magnitude (confidence is affine over [0,1] with
   both endpoints in [0,1]), so the value error is below [point_eps] —
   inside the [beta_eps] fallback band whenever it could matter.  The
   pair is only derived from two points at least [derive_eps] apart:
   dividing by a smaller gap would amplify the evaluators' ~1e-16
   rounding past the band (grid steps are far larger than this). *)
let point_eps = 1e-12

let derive_eps = 1e-4

(* Confidence of class [cid] with [bid]'s level at [x] (other variables
   at their current committed levels).  A cached slot is valid iff no
   *other* variable of the class changed since it was filled:
   [class_version - base_commits bid] counts exactly those commits, so a
   matching snapshot is proof of validity — and conversely a fresh
   computation under the same other-levels would produce the same
   floats, which is what makes the cache transparent.  Sets
   [probe_exact] so callers deciding satisfaction know whether to apply
   the near-beta exact fallback. *)
let class_conf_at st cid bid x =
  let s = slot_of st.coeff_bids.(cid) bid in
  let snap_now = st.class_version.(cid) - st.base_commits.(bid) in
  let snaps = st.coeff_snap.(cid) in
  if snaps.(s) <> snap_now then begin
    (* stale or empty: one evaluation, cache the observed point *)
    if snaps.(s) <> min_int then
      st.coeff_invalidations <- st.coeff_invalidations + 1;
    let f = eval_pinned st cid bid x in
    st.coeff_a.(cid).(s) <- f;
    st.coeff_b.(cid).(s) <- Float.nan;
    st.coeff_x.(cid).(s) <- x;
    snaps.(s) <- snap_now;
    st.probe_exact <- true;
    f
  end
  else begin
    let b = st.coeff_b.(cid).(s) in
    if Float.is_nan b then begin
      let x0 = st.coeff_x.(cid).(s) and f0 = st.coeff_a.(cid).(s) in
      let dx = x -. x0 in
      if Float.abs dx <= point_eps then begin
        st.incremental_evals <- st.incremental_evals + 1;
        st.probe_exact <- false;
        f0
      end
      else begin
        let f = eval_pinned st cid bid x in
        if Float.abs dx >= derive_eps then begin
          let b = (f -. f0) /. dx in
          st.coeff_b.(cid).(s) <- b;
          st.coeff_a.(cid).(s) <- f -. (b *. x)
        end
        else begin
          (* too close to derive a trustworthy slope: keep the fresher
             point *)
          st.coeff_a.(cid).(s) <- f;
          st.coeff_x.(cid).(s) <- x
        end;
        st.probe_exact <- true;
        f
      end
    end
    else begin
      st.incremental_evals <- st.incremental_evals + 1;
      st.probe_exact <- false;
      st.coeff_a.(cid).(s) +. (b *. x)
    end
  end

(* Re-evaluate class [cid] after a committed change of [bid] to [p]:
   at most one evaluation (O(1) once the slot holds a pair), with the
   exact fallback near beta whenever the value came from the cache. *)
let refresh_class st cid bid p =
  let c = class_conf_at st cid bid p in
  let c =
    if
      (not st.probe_exact)
      && Float.abs (c -. Problem.beta st.problem) <= beta_eps
    then eval_class_full st cid
    else c
  in
  List.iter
    (fun rid -> set_result_conf st rid c)
    (Problem.class_members st.problem cid)

let set_base st bid p =
  let b = Problem.base st.problem bid in
  if p < b.Problem.p0 -. 1e-9 || p > b.Problem.cap +. 1e-9 then
    invalid_arg
      (Printf.sprintf "State.set_base: %g outside [%g, %g] for %s" p
         b.Problem.p0 b.Problem.cap
         (Tid.to_string b.Problem.tid));
  let p = Float.max b.Problem.p0 (Float.min b.Problem.cap p) in
  let old = st.p.(bid) in
  if Float.abs (p -. old) > 0.0 then begin
    let new_contrib =
      Cost.Cost_model.eval b.Problem.cost ~from_:b.Problem.p0 ~to_:p
    in
    let old_contrib = st.cost_contrib.(bid) in
    let saved_finite = st.finite_cost
    and saved_infinite = st.infinite_contribs in
    if old_contrib = infinity then
      st.infinite_contribs <- st.infinite_contribs - 1
    else st.finite_cost <- st.finite_cost -. old_contrib;
    if new_contrib = infinity then
      st.infinite_contribs <- st.infinite_contribs + 1
    else st.finite_cost <- st.finite_cost +. new_contrib;
    st.cost_contrib.(bid) <- new_contrib;
    st.p.(bid) <- p;
    let refresh level =
      if st.incremental then begin
        (* commit stamps first: [bid]'s own entries stay valid
           (class_version - base_commits bid is unchanged), every other
           variable's entries in the affected classes go stale *)
        st.base_commits.(bid) <- st.base_commits.(bid) + 1;
        let classes = Problem.classes_of_base st.problem bid in
        List.iter
          (fun cid -> st.class_version.(cid) <- st.class_version.(cid) + 1)
          classes;
        List.iter (fun cid -> refresh_class st cid bid level) classes
      end
      else
        List.iter (refresh_result st) (Problem.results_of_base st.problem bid)
    in
    try refresh p
    with e ->
      (* Aborted commit (the evaluator raised mid-refresh, leaving some
         cached confidences at the new level and the rest stale): put the
         state back exactly as it was before the call — level, cost
         accounting (restored to the saved values, not re-derived, so no
         float drift), and every affected confidence recomputed at the
         old level.  Fault injection is suppressed for the rollback: it
         models the world failing, not the cleanup handler. *)
      Resilience.Fault.protect (fun () ->
          st.p.(bid) <- old;
          st.cost_contrib.(bid) <- old_contrib;
          st.finite_cost <- saved_finite;
          st.infinite_contribs <- saved_infinite;
          refresh old);
      raise e
  end

(* Delta steps stay on the grid {p0 + k*delta} ∪ {cap}: a step down from a
   clamped cap lands on the largest grid level below it, so greedy
   solutions remain inside the branch-and-bound search space. *)
let raise_by_delta st bid =
  let b = Problem.base st.problem bid in
  let delta = Problem.delta st.problem in
  let cur = st.p.(bid) in
  if cur >= b.Problem.cap -. 1e-12 then false
  else begin
    let k = int_of_float (Float.floor (((cur -. b.Problem.p0) /. delta) +. 1e-9)) in
    let target = b.Problem.p0 +. (float_of_int (k + 1) *. delta) in
    set_base st bid (Float.min b.Problem.cap target);
    true
  end

let lower_by_delta st bid =
  let b = Problem.base st.problem bid in
  let delta = Problem.delta st.problem in
  let cur = st.p.(bid) in
  if cur <= b.Problem.p0 +. 1e-12 then false
  else begin
    let k = int_of_float (Float.floor (((cur -. b.Problem.p0) /. delta) -. 1e-9)) in
    let target = b.Problem.p0 +. (float_of_int k *. delta) in
    set_base st bid (Float.max b.Problem.p0 target);
    true
  end

let result_confidence st rid = st.conf.(rid)

let is_satisfied st rid = st.sat.(rid)

let satisfied_count st = st.satisfied

let satisfied_results st =
  let acc = ref [] in
  for rid = Array.length st.sat - 1 downto 0 do
    if st.sat.(rid) then acc := rid :: !acc
  done;
  !acc

let cost st = if st.infinite_contribs > 0 then infinity else st.finite_cost

let raised_bases st =
  let acc = ref [] in
  for bid = Array.length st.p - 1 downto 0 do
    if st.p.(bid) > (Problem.base st.problem bid).Problem.p0 +. 1e-12 then
      acc := bid :: !acc
  done;
  !acc

let solution st =
  List.map
    (fun bid -> ((Problem.base st.problem bid).Problem.tid, st.p.(bid)))
    (raised_bases st)

let snapshot st = Array.copy st.p

let restore st saved =
  Array.iteri
    (fun bid p -> if Float.abs (p -. st.p.(bid)) > 0.0 then set_base st bid p)
    saved

let reset st =
  for bid = 0 to Array.length st.p - 1 do
    let p0 = (Problem.base st.problem bid).Problem.p0 in
    if st.p.(bid) <> p0 then set_base st bid p0
  done

(* The inner probe of greedy selection and the multi-query combiner: with
   the affine cache this is a coefficient lookup and one multiply-add —
   the state is never touched (coefficient computation pins and restores
   the level slot internally). *)
let confidence_with_override st ~rid ~bid ~level =
  if st.incremental then
    class_conf_at st (Problem.class_of_result st.problem rid) bid level
  else begin
    let saved = st.p.(bid) in
    st.p.(bid) <- level;
    st.full_evals <- st.full_evals + 1;
    match eval_result st rid with
    | f ->
      st.p.(bid) <- saved;
      f
    | exception e ->
      st.p.(bid) <- saved;
      raise e
  end

let gain st bid ?(only_unsatisfied = false) dp =
  let b = Problem.base st.problem bid in
  let cur = st.p.(bid) in
  let target = Float.min b.Problem.cap (cur +. dp) in
  if target <= cur +. 1e-12 then 0.0
  else begin
    let dcost = Cost.Cost_model.eval b.Problem.cost ~from_:cur ~to_:target in
    if dcost <= 0.0 || Float.is_nan dcost || dcost = infinity then 0.0
    else begin
      let sum = ref 0.0 in
      if st.incremental then
        (* same rid iteration order as the baseline, but each probe is an
           affine lookup shared across the class's members *)
        List.iter
          (fun rid ->
            if not (only_unsatisfied && st.sat.(rid)) then begin
              let f_new = confidence_with_override st ~rid ~bid ~level:target in
              sum := !sum +. (f_new -. st.conf.(rid))
            end)
          (Problem.results_of_base st.problem bid)
      else begin
        let saved = st.p.(bid) in
        st.p.(bid) <- target;
        let probe () =
          List.iter
            (fun rid ->
              if not (only_unsatisfied && st.sat.(rid)) then begin
                st.full_evals <- st.full_evals + 1;
                let f_new = eval_result st rid in
                sum := !sum +. (f_new -. st.conf.(rid))
              end)
            (Problem.results_of_base st.problem bid)
        in
        (match probe () with
        | () -> st.p.(bid) <- saved
        | exception e ->
          st.p.(bid) <- saved;
          raise e)
      end;
      !sum /. dcost
    end
  end

let incremental_evals st = st.incremental_evals
let full_evals st = st.full_evals
let coeff_invalidations st = st.coeff_invalidations

type evals = {
  incremental_evals : int;
  full_evals : int;
  coeff_invalidations : int;
}

let no_evals = { incremental_evals = 0; full_evals = 0; coeff_invalidations = 0 }

let evals (st : t) =
  {
    incremental_evals = st.incremental_evals;
    full_evals = st.full_evals;
    coeff_invalidations = st.coeff_invalidations;
  }

let evals_since (st : t) (e0 : evals) =
  {
    incremental_evals = st.incremental_evals - e0.incremental_evals;
    full_evals = st.full_evals - e0.full_evals;
    coeff_invalidations = st.coeff_invalidations - e0.coeff_invalidations;
  }

let add_evals a b =
  {
    incremental_evals = a.incremental_evals + b.incremental_evals;
    full_evals = a.full_evals + b.full_evals;
    coeff_invalidations = a.coeff_invalidations + b.coeff_invalidations;
  }

let record_evals m e =
  Obs.Metrics.incr m ~by:e.incremental_evals "state.incremental_evals";
  Obs.Metrics.incr m ~by:e.full_evals "state.full_evals";
  Obs.Metrics.incr m ~by:e.coeff_invalidations "state.coeff_invalidations"
