type config = {
  request_timeout_ms : float;
  retries : int;
  backoff_base_ms : float;
  backoff_cap_ms : float;
  breaker_threshold : int;
  breaker_cooldown_ms : float;
}

let default_config =
  {
    request_timeout_ms = 2000.0;
    retries = 3;
    backoff_base_ms = 5.0;
    backoff_cap_ms = 100.0;
    breaker_threshold = 5;
    breaker_cooldown_ms = 250.0;
  }

type t = {
  addr : Server.listen;
  config : config;
  rng : Prng.Splitmix.t;
  mutable sock : Unix.file_descr option;
  mutable consecutive_failures : int;
  mutable open_until_ms : float;  (* breaker: fail fast before this time *)
  mutable retries_used : int;
  mutable breaker_opens : int;
}

type outcome =
  | Answer of Wire.answer
  | Accepted of { applied : int; cost : float }
  | Shed of { retry_after_ms : float }
  | Timed_out of string
  | Failed of string

let outcome_label = function
  | Answer _ -> "answer"
  | Accepted _ -> "accepted"
  | Shed _ -> "shed"
  | Timed_out _ -> "timeout"
  | Failed _ -> "failed"

let create ?(config = default_config) ?(seed = 0) addr =
  (* a severed server mid-write must surface as EPIPE (a Transport
     failure, retriable), not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  {
    addr;
    config;
    rng = Prng.Splitmix.of_int seed;
    sock = None;
    consecutive_failures = 0;
    open_until_ms = neg_infinity;
    retries_used = 0;
    breaker_opens = 0;
  }

let now_ms () = Unix.gettimeofday () *. 1000.0

let close t =
  match t.sock with
  | None -> ()
  | Some fd ->
    t.sock <- None;
    (try Unix.close fd with Unix.Unix_error _ -> ())

exception Transport of string

let connect t =
  match t.sock with
  | Some fd -> fd
  | None -> (
    let domain, sockaddr =
      match t.addr with
      | Server.Tcp (host, port) ->
        let inet =
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception _ -> (
            try (Unix.gethostbyname host).Unix.h_addr_list.(0)
            with Not_found -> raise (Transport ("unknown host " ^ host)))
        in
        (Unix.PF_INET, Unix.ADDR_INET (inet, port))
      | Server.Unix_path p -> (Unix.PF_UNIX, Unix.ADDR_UNIX p)
    in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO (t.config.request_timeout_ms /. 1000.0);
      (match t.addr with
      | Server.Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
      | Server.Unix_path _ -> ());
      Unix.connect fd sockaddr
    with
    | () ->
      t.sock <- Some fd;
      fd
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Transport ("connect: " ^ Unix.error_message e)))

let really_write fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let sent = ref 0 in
  (try
     while !sent < len do
       let n = Unix.write fd b !sent (len - !sent) in
       sent := !sent + n
     done
   with
  | Unix.Unix_error (EINTR, _, _) -> ()
  | Unix.Unix_error (e, _, _) -> raise (Transport ("write: " ^ Unix.error_message e)));
  if !sent < len then raise (Transport "write: short")

exception Response_timeout

let recv fd buf off len =
  try Unix.read fd buf off len with
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> raise Response_timeout
  | Unix.Unix_error (EINTR, _, _) -> 0
  | Unix.Unix_error (e, _, _) -> raise (Transport ("read: " ^ Unix.error_message e))

(* One attempt: send the frame, wait for the single response frame. *)
let attempt t req =
  let fd = connect t in
  let typ, payload = Wire.encode_request req in
  really_write fd (Frame.encode ~typ payload);
  match Frame.read (recv fd) with
  | Error Frame.Closed | Error (Frame.Torn _) ->
    raise (Transport "connection severed awaiting response")
  | Error e -> raise (Transport (Frame.error_to_string e))
  | Ok (typ, payload) -> (
    match Wire.decode_response ~typ payload with
    | Error msg -> raise (Transport ("bad response: " ^ msg))
    | Ok resp -> resp)

let record_failure t =
  close t;
  t.consecutive_failures <- t.consecutive_failures + 1;
  if t.consecutive_failures >= t.config.breaker_threshold then begin
    t.open_until_ms <- now_ms () +. t.config.breaker_cooldown_ms;
    t.breaker_opens <- t.breaker_opens + 1;
    (* half-open after the cooldown: the next call is the probe *)
    t.consecutive_failures <- 0
  end

let record_success t = t.consecutive_failures <- 0

let backoff_ms t ~k ~hint =
  let exp = t.config.backoff_base_ms *. (2.0 ** float_of_int k) in
  let capped = Float.min t.config.backoff_cap_ms (Float.max exp hint) in
  capped *. Prng.Splitmix.float_in t.rng 0.5 1.5

(* Idempotent call: retry transport failures and sheds with capped
   exponential backoff + seeded jitter. *)
let call_idempotent t req =
  if now_ms () < t.open_until_ms then Failed "circuit breaker open"
  else begin
    let attempts = t.config.retries + 1 in
    let rec go k last =
      if k >= attempts then last
      else begin
        if k > 0 then t.retries_used <- t.retries_used + 1;
        match attempt t req with
        | Wire.Answer a ->
          record_success t;
          Answer a
        | Wire.Accepted { applied; cost } ->
          record_success t;
          Accepted { applied; cost }
        | Wire.Pong ->
          record_success t;
          Answer { released = 0; withheld = 0; requested = 0; degraded = None; proposal_token = None; body = "pong" }
        | Wire.Overloaded { retry_after_ms } ->
          (* the server is alive: not a breaker event *)
          record_success t;
          let shed = Shed { retry_after_ms } in
          if k + 1 >= attempts then shed
          else begin
            Unix.sleepf (backoff_ms t ~k ~hint:retry_after_ms /. 1000.0);
            go (k + 1) shed
          end
        | Wire.Timeout { reason } ->
          (* the deadline is spent; retrying cannot beat it *)
          record_success t;
          Timed_out reason
        | Wire.Err msg ->
          record_success t;
          Failed msg
        | exception Transport what ->
          record_failure t;
          if now_ms () < t.open_until_ms then Failed ("circuit breaker open: " ^ what)
          else if k + 1 >= attempts then Failed what
          else begin
            Unix.sleepf (backoff_ms t ~k ~hint:0.0 /. 1000.0);
            go (k + 1) (Failed what)
          end
        | exception Response_timeout ->
          record_failure t;
          let to_ = Timed_out "no response within request timeout" in
          if now_ms () < t.open_until_ms then to_
          else if k + 1 >= attempts then to_
          else begin
            Unix.sleepf (backoff_ms t ~k ~hint:0.0 /. 1000.0);
            go (k + 1) to_
          end
      end
    in
    go 0 (Failed "no attempt made")
  end

let query t ~user ~purpose ~perc ?deadline_ms sql =
  call_idempotent t (Wire.Query { user; purpose; perc; sql; deadline_ms })

let ping t =
  match call_idempotent t Wire.Ping with
  | Answer _ -> Answer { released = 0; withheld = 0; requested = 0; degraded = None; proposal_token = None; body = "pong" }
  | o -> o

(* accept_proposal mutates the shared database: one attempt, never
   retried — a lost ack is indistinguishable from a lost request, and
   guessing would risk double-application (the server's single-use
   token makes a replay harmless, but the client still refuses). *)
let accept t ~user ~token =
  if now_ms () < t.open_until_ms then Failed "circuit breaker open"
  else
    match attempt t (Wire.Accept { user; token }) with
    | Wire.Accepted { applied; cost } ->
      record_success t;
      Accepted { applied; cost }
    | Wire.Overloaded { retry_after_ms } ->
      record_success t;
      Shed { retry_after_ms }
    | Wire.Timeout { reason } ->
      record_success t;
      Timed_out reason
    | Wire.Err msg ->
      record_success t;
      Failed msg
    | Wire.Answer _ | Wire.Pong ->
      record_success t;
      Failed "unexpected response to accept"
    | exception Transport what ->
      record_failure t;
      Failed ("accept not retried after transport failure: " ^ what)
    | exception Response_timeout ->
      record_failure t;
      Timed_out "accept: no response within request timeout (not retried)"

let retries_used t = t.retries_used
let breaker_opens t = t.breaker_opens
