(** Message codec over {!Frame} payloads.

    Requests and responses are binary-encoded with length-prefixed
    strings and big-endian integers; floats travel as their IEEE-754
    bit patterns ([Int64.bits_of_float]), so a decoded value is
    bit-identical to what was encoded — the wire never rounds a
    confidence.

    {b Idempotence.}  [Query] and [Ping] are read-only and safe to
    retry.  [Accept] applies a strategy-finding proposal to the shared
    database — it is {e not} idempotent and the client never retries it
    (see {!Client}).  The proposal itself stays server-side: an answer
    that includes a proposal carries an opaque [proposal_token], and
    [Accept] names that token, so a retried or replayed frame cannot
    re-apply increments (tokens are single-use). *)

type request =
  | Query of {
      user : string;
      purpose : string;
      perc : float;
      sql : string;
      deadline_ms : float option;
          (** client budget for this request; travels in the frame and
              becomes a [Resilience.Deadline] server-side *)
    }
  | Accept of { user : string; token : int }
  | Ping

type answer = {
  released : int;
  withheld : int;
  requested : int;
  degraded : string option;
  proposal_token : int option;
      (** present when the response carries a proposal; quote it in
          [Accept] to apply the increments *)
  body : string;
      (** the full deterministic response encoding ({!body_of_response}) *)
}

type response =
  | Answer of answer
  | Accepted of { applied : int; cost : float }
  | Pong
  | Overloaded of { retry_after_ms : float }
      (** load shed: the admission queue was full.  Terminal for this
          attempt; clients may retry after the hint. *)
  | Timeout of { reason : string }
      (** the request's deadline expired server-side (e.g. while queued)
          before any work was attempted *)
  | Err of string  (** semantic error (RBAC denial, bad SQL, bad token) *)

val encode_request : request -> int * string
(** [(frame type, payload)]. *)

val decode_request : typ:int -> string -> (request, string) result

val encode_response : response -> int * string
val decode_response : typ:int -> string -> (response, string) result

val body_of_response : Pcqe.Engine.response -> string
(** Canonical deterministic encoding of an engine response: schema,
    per-tuple values + lineage + confidence bits + tier, withheld /
    ambiguous / requested counts, threshold bits, applied policies,
    proposal (increments, cost bits, projected release, solver name,
    resolution), infeasible and degraded markers.  Excludes wall-time
    telemetry ([elapsed_s], solver stats) so the same logical answer
    always encodes to the same bytes — this is what the bench asserts
    bit-identical between the wire and in-process [Session.batch]. *)

val answer_of_response :
  ?proposal_token:int -> Pcqe.Engine.response -> answer
