(** Wire client: timeouts, capped-exponential-backoff retries with
    seeded jitter, and a circuit breaker.

    {b Retry policy.}  Only idempotent operations retry: [Query] and
    [Ping] are read-only, so a retry after a severed connection or an
    [Overloaded] shed is safe.  {!accept} is {e never} retried — it
    mutates the shared database, and a response lost on the wire leaves
    the client unable to tell "not applied" from "applied but the ack
    was severed"; single-use server-side tokens make an accidental
    replay harmless, but the client still refuses to guess.  Backoff for
    attempt [k] is [base · 2^k] capped at [cap], scaled by a jitter in
    [0.5, 1.5) drawn from a seeded {!Prng.Splitmix} stream, so chaos
    runs replay identically.

    {b Circuit breaker.}  After [breaker_threshold] consecutive
    transport failures the breaker opens: calls fail fast (no socket
    touched) for [breaker_cooldown_ms], after which one probe attempt is
    allowed through (half-open); success closes the breaker. *)

type config = {
  request_timeout_ms : float;  (** max wait for a response frame *)
  retries : int;  (** retry attempts after the first try (idempotent ops only) *)
  backoff_base_ms : float;
  backoff_cap_ms : float;
  breaker_threshold : int;  (** consecutive failures that open the breaker *)
  breaker_cooldown_ms : float;
}

val default_config : config
(** 2 s timeout, 3 retries, 5 ms base / 100 ms cap backoff, breaker at
    5 failures with 250 ms cooldown. *)

type t

type outcome =
  | Answer of Wire.answer
  | Accepted of { applied : int; cost : float }
  | Shed of { retry_after_ms : float }
      (** still overloaded after all retries *)
  | Timed_out of string  (** server-side deadline or response timeout *)
  | Failed of string  (** semantic error, transport failure, open breaker *)

val outcome_label : outcome -> string
(** ["answer" | "accepted" | "shed" | "timeout" | "failed"]. *)

val create : ?config:config -> ?seed:int -> Server.listen -> t
(** No connection is opened until the first call. *)

val query :
  t ->
  user:string ->
  purpose:string ->
  perc:float ->
  ?deadline_ms:float ->
  string ->
  outcome
(** [query t ~user ~purpose ~perc sql] — retried per the policy above. *)

val accept : t -> user:string -> token:int -> outcome
(** Apply a parked proposal.  Exactly one attempt, ever. *)

val ping : t -> outcome

val retries_used : t -> int
(** Total retry attempts across the client's lifetime. *)

val breaker_opens : t -> int
val close : t -> unit
