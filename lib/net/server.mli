(** The serving tier: per-principal [Engine.Session]s behind a socket.

    One acceptor thread plus one thread per connection.  Every request
    on a connection is answered in order with exactly one terminal
    response frame: an answer, an explicit [Overloaded] shed, an
    explicit queue-expired [Timeout], or an [Err] — never silence.

    {b Admission.}  At most [config.admit] requests execute at once;
    up to [config.queue] more wait in a bounded queue; beyond that the
    request is shed immediately with [Overloaded {retry_after_ms}] —
    overload produces fast explicit refusals, not unbounded queueing.
    Queue wait is charged against the request's deadline: a request
    whose deadline expires while queued gets [Timeout] without touching
    the engine.

    {b Deadline propagation.}  A [Query]'s [deadline_ms] (minus time
    already spent queued) becomes [Resilience.Deadline.Wall_ms] on the
    session context, so strategy finding degrades to [Partial] instead
    of hanging; the degradation marker travels back in the answer.

    {b Sessions.}  Each principal gets its own [Engine.Session] (own
    caches), created lazily and guarded by a per-session mutex, all
    serving one {e published} database held by the server: every query
    pulls the latest published value before answering, and [Accept]
    applies its increments against it — serialized under the server
    lock, so concurrent accepts by different principals form one linear
    history and each accept is visible to every principal's next query.
    Per-session caches revalidate through the database's per-shard
    epoch vectors, so an accept invalidates only the cached classes
    whose lineage lives on the mutated shard(s).  Proposals returned by
    answers are parked server-side under single-use tokens; [Accept]
    quotes a token, which makes replayed/retried accepts harmless.

    {b Chaos.}  The [net.accept]/[net.read]/[net.write]/[net.delay]
    fault sites fire here, so an armed {!Resilience.Fault} plan severs
    connections and stalls requests mid-flight.  Malformed or torn
    frames kill at most their own connection, never the server. *)

type listen =
  | Tcp of string * int  (** host, port (0 = ephemeral) *)
  | Unix_path of string  (** unix-domain socket path *)

val listen_to_string : listen -> string

val listen_of_string : string -> (listen, string) result
(** Parses ["tcp:HOST:PORT"] or ["unix:PATH"]. *)

type config = {
  admit : int;  (** max concurrently executing requests *)
  queue : int;  (** max requests waiting for an execution slot *)
  retry_after_ms : float;  (** hint carried in [Overloaded] responses *)
  default_deadline_ms : float option;
      (** applied to [Query] requests that carry no deadline *)
  poll_interval_s : float;
      (** how often idle connection readers re-check the stop flag *)
  fault_stall_s : float;
      (** how long an injected [net.delay] fault stalls a request while
          it holds its admission slot — the chaos knob for overload *)
}

val default_config : config
(** admit 4, queue 16, retry after 50 ms, no default deadline. *)

type t

val start :
  ?obs:Obs.t -> ?config:config -> ctx:Pcqe.Engine.context -> listen -> t
(** Bind, listen and start the acceptor thread.  [ctx] is the base
    context cloned into per-principal sessions; its [obs]/[profile]
    fields are ignored for sessions (the engine registry is
    single-writer, so connection threads must not share it) — pass
    [?obs] for the server's own [net.*] counters and gauges, updated
    under the server lock.  @raise Unix.Unix_error on bind failure. *)

val address : t -> listen
(** The bound address — with the real port when [Tcp (_, 0)] was
    requested. *)

val stop : ?drain_deadline_s:float -> t -> unit
(** Stop accepting, sever live connections, join every thread.
    Idempotent.  With [drain_deadline_s > 0] (default [0.]), requests
    already admitted when the flag flips are allowed up to that many
    seconds to reach their terminal response before connections are
    severed — the graceful path [pcqe serve] takes on SIGINT/SIGTERM;
    queued and new requests are refused immediately either way. *)

val requests_served : t -> int
(** Terminal responses produced so far (answers, sheds, timeouts,
    errors, pongs). *)

val stats : t -> (string * int) list
(** Counter snapshot, sorted by name: [net.answers], [net.shed],
    [net.timeouts], [net.errors], [net.malformed], [net.pings],
    [net.accepted], [net.connections], [net.fault.*]. *)

val refresh_shard_gauges : t -> unit
(** Refresh the per-shard serving gauges — [shard.epoch],
    [shard.tuples] and [shard.conf_cache_size], one [{shard="i"}]
    labelled series each — from the published database and the live
    per-principal session caches.  On demand rather than per request
    (summing cache occupancy scans every session's cache); [pcqe serve]
    calls it before flushing metrics.  No-op without an observer. *)
