type request =
  | Query of {
      user : string;
      purpose : string;
      perc : float;
      sql : string;
      deadline_ms : float option;
    }
  | Accept of { user : string; token : int }
  | Ping

type answer = {
  released : int;
  withheld : int;
  requested : int;
  degraded : string option;
  proposal_token : int option;
  body : string;
}

type response =
  | Answer of answer
  | Accepted of { applied : int; cost : float }
  | Pong
  | Overloaded of { retry_after_ms : float }
  | Timeout of { reason : string }
  | Err of string

(* Frame type bytes: requests 1-9, responses 10-19. *)
let t_query = 1
let t_accept = 2
let t_ping = 3
let t_answer = 10
let t_accepted = 11
let t_pong = 12
let t_overloaded = 13
let t_timeout = 14
let t_err = 15

(* --- encoding primitives ------------------------------------------- *)

let put_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let put_u32 b v =
  put_u8 b (v lsr 24);
  put_u8 b (v lsr 16);
  put_u8 b (v lsr 8);
  put_u8 b v

let put_i64 b (v : int64) =
  for shift = 7 downto 0 do
    put_u8 b (Int64.to_int (Int64.shift_right_logical v (shift * 8)) land 0xff)
  done

let put_float b f = put_i64 b (Int64.bits_of_float f)

let put_str b s =
  put_u32 b (String.length s);
  Buffer.add_string b s

let put_opt put b = function
  | None -> put_u8 b 0
  | Some v ->
    put_u8 b 1;
    put b v

exception Malformed of string

type cursor = { s : string; mutable pos : int }

let need c n what =
  if c.pos + n > String.length c.s then
    raise (Malformed (Printf.sprintf "truncated payload reading %s" what))

let get_u8 c what =
  need c 1 what;
  let v = Char.code c.s.[c.pos] in
  c.pos <- c.pos + 1;
  v

let get_u32 c what =
  need c 4 what;
  let v =
    (Char.code c.s.[c.pos] lsl 24)
    lor (Char.code c.s.[c.pos + 1] lsl 16)
    lor (Char.code c.s.[c.pos + 2] lsl 8)
    lor Char.code c.s.[c.pos + 3]
  in
  c.pos <- c.pos + 4;
  v

let get_i64 c what =
  need c 8 what;
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (Char.code c.s.[c.pos + i]))
  done;
  c.pos <- c.pos + 8;
  !v

let get_float c what = Int64.float_of_bits (get_i64 c what)

let get_str c what =
  let n = get_u32 c what in
  need c n what;
  let s = String.sub c.s c.pos n in
  c.pos <- c.pos + n;
  s

let get_opt get c what =
  match get_u8 c what with
  | 0 -> None
  | 1 -> Some (get c what)
  | n -> raise (Malformed (Printf.sprintf "bad option tag %d for %s" n what))

let finish c v =
  if c.pos <> String.length c.s then
    raise (Malformed "trailing bytes after message")
  else v

let decoding s f =
  try Ok (f { s; pos = 0 }) with
  | Malformed m -> Error m

(* --- requests ------------------------------------------------------ *)

let encode_request = function
  | Query { user; purpose; perc; sql; deadline_ms } ->
    let b = Buffer.create 64 in
    put_str b user;
    put_str b purpose;
    put_float b perc;
    put_str b sql;
    put_opt (fun b f -> put_float b f) b deadline_ms;
    (t_query, Buffer.contents b)
  | Accept { user; token } ->
    let b = Buffer.create 32 in
    put_str b user;
    put_i64 b (Int64.of_int token);
    (t_accept, Buffer.contents b)
  | Ping -> (t_ping, "")

let decode_request ~typ payload =
  decoding payload (fun c ->
      if typ = t_query then begin
        let user = get_str c "user" in
        let purpose = get_str c "purpose" in
        let perc = get_float c "perc" in
        let sql = get_str c "sql" in
        let deadline_ms = get_opt get_float c "deadline" in
        finish c (Query { user; purpose; perc; sql; deadline_ms })
      end
      else if typ = t_accept then begin
        let user = get_str c "user" in
        let token = Int64.to_int (get_i64 c "token") in
        finish c (Accept { user; token })
      end
      else if typ = t_ping then finish c Ping
      else raise (Malformed (Printf.sprintf "unknown request type %d" typ)))

(* --- responses ----------------------------------------------------- *)

let encode_response = function
  | Answer a ->
    let b = Buffer.create (128 + String.length a.body) in
    put_u32 b a.released;
    put_u32 b a.withheld;
    put_u32 b a.requested;
    put_opt (fun b s -> put_str b s) b a.degraded;
    put_opt (fun b t -> put_i64 b (Int64.of_int t)) b a.proposal_token;
    put_str b a.body;
    (t_answer, Buffer.contents b)
  | Accepted { applied; cost } ->
    let b = Buffer.create 16 in
    put_u32 b applied;
    put_float b cost;
    (t_accepted, Buffer.contents b)
  | Pong -> (t_pong, "")
  | Overloaded { retry_after_ms } ->
    let b = Buffer.create 8 in
    put_float b retry_after_ms;
    (t_overloaded, Buffer.contents b)
  | Timeout { reason } ->
    let b = Buffer.create 32 in
    put_str b reason;
    (t_timeout, Buffer.contents b)
  | Err msg ->
    let b = Buffer.create 32 in
    put_str b msg;
    (t_err, Buffer.contents b)

let decode_response ~typ payload =
  decoding payload (fun c ->
      if typ = t_answer then begin
        let released = get_u32 c "released" in
        let withheld = get_u32 c "withheld" in
        let requested = get_u32 c "requested" in
        let degraded = get_opt get_str c "degraded" in
        let proposal_token =
          get_opt (fun c w -> Int64.to_int (get_i64 c w)) c "token"
        in
        let body = get_str c "body" in
        finish c
          (Answer { released; withheld; requested; degraded; proposal_token; body })
      end
      else if typ = t_accepted then begin
        let applied = get_u32 c "applied" in
        let cost = get_float c "cost" in
        finish c (Accepted { applied; cost })
      end
      else if typ = t_pong then finish c Pong
      else if typ = t_overloaded then
        let retry_after_ms = get_float c "retry_after" in
        finish c (Overloaded { retry_after_ms })
      else if typ = t_timeout then finish c (Timeout { reason = get_str c "reason" })
      else if typ = t_err then finish c (Err (get_str c "err"))
      else raise (Malformed (Printf.sprintf "unknown response type %d" typ)))

(* --- engine response body ------------------------------------------ *)

let body_of_response (r : Pcqe.Engine.response) =
  let b = Buffer.create 256 in
  put_str b (Relational.Schema.to_string r.schema);
  put_opt (fun b f -> put_float b f) b r.threshold;
  put_u32 b (List.length r.released);
  List.iter
    (fun (rel : Pcqe.Engine.released) ->
      put_str b (Relational.Tuple.to_string rel.tuple);
      put_str b (Lineage.Formula.to_string rel.lineage);
      put_float b rel.confidence;
      put_str b rel.conf_tier)
    r.released;
  put_u32 b r.withheld;
  put_u32 b r.ambiguous;
  put_u32 b r.requested;
  put_u32 b (List.length r.applied_policies);
  List.iter (fun p -> put_str b (Rbac.Policy.to_string p)) r.applied_policies;
  put_u8 b (if r.infeasible then 1 else 0);
  put_opt (fun b s -> put_str b s) b r.degraded;
  (* elapsed_s and solver stats are wall-time telemetry and excluded:
     the same logical answer must always encode to the same bytes *)
  put_opt
    (fun b (p : Pcqe.Engine.proposal) ->
      put_str b p.solver_name;
      put_float b p.cost;
      put_u32 b p.projected_release;
      (match p.resolution with
      | Optimize.Solver.Complete -> put_str b "complete"
      | Optimize.Solver.Partial { reason } -> put_str b ("partial:" ^ reason));
      put_u32 b (List.length p.increments);
      List.iter
        (fun (tid, target) ->
          put_str b (Lineage.Tid.to_string tid);
          put_float b target)
        p.increments)
    b r.proposal;
  Buffer.contents b

let answer_of_response ?proposal_token (r : Pcqe.Engine.response) =
  {
    released = List.length r.released;
    withheld = r.withheld;
    requested = r.requested;
    degraded = r.degraded;
    proposal_token;
    body = body_of_response r;
  }
