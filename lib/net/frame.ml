let version = 1
let header_len = 12
let max_payload = 8 * 1024 * 1024
let magic0 = 'P'
let magic1 = 'Q'

(* Table-driven CRC-32 (IEEE), computed once at load. *)
let crc_table =
  let t = Array.make 256 0l in
  for n = 0 to 255 do
    let c = ref (Int32.of_int n) in
    for _ = 0 to 7 do
      c :=
        if Int32.logand !c 1l <> 0l then
          Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
        else Int32.shift_right_logical !c 1
    done;
    t.(n) <- !c
  done;
  t

let crc32 s =
  let c = ref 0xFFFFFFFFl in
  String.iter
    (fun ch ->
      let idx =
        Int32.to_int (Int32.logand (Int32.logxor !c (Int32.of_int (Char.code ch))) 0xFFl)
      in
      c := Int32.logxor crc_table.(idx) (Int32.shift_right_logical !c 8))
    s;
  Int32.logxor !c 0xFFFFFFFFl

type error =
  | Closed
  | Torn of string
  | Bad_magic
  | Bad_version of int
  | Too_large of int
  | Bad_checksum

let error_to_string = function
  | Closed -> "connection closed"
  | Torn what -> Printf.sprintf "torn frame: short read in %s" what
  | Bad_magic -> "bad magic"
  | Bad_version v -> Printf.sprintf "unsupported protocol version %d" v
  | Too_large n -> Printf.sprintf "frame payload too large (%d bytes)" n
  | Bad_checksum -> "payload checksum mismatch"

let put_u32 b v =
  Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
  Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
  Buffer.add_char b (Char.chr (v land 0xff))

let get_u32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode ~typ payload =
  if typ < 0 || typ > 255 then invalid_arg "Frame.encode: type out of range";
  if String.length payload > max_payload then
    invalid_arg "Frame.encode: payload too large";
  let b = Buffer.create (header_len + String.length payload) in
  Buffer.add_char b magic0;
  Buffer.add_char b magic1;
  Buffer.add_char b (Char.chr version);
  Buffer.add_char b (Char.chr typ);
  put_u32 b (String.length payload);
  put_u32 b (Int32.to_int (crc32 payload) land 0xFFFFFFFF);
  Buffer.add_string b payload;
  Buffer.contents b

(* Read exactly [len] bytes; Ok true on success, Ok false on immediate
   clean EOF, Error on EOF mid-way. *)
let really_read recv buf len what =
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = recv buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  if !got = len then Ok true
  else if !got = 0 then Ok false
  else Error (Torn what)

let read recv =
  let hdr = Bytes.create header_len in
  match really_read recv hdr header_len "header" with
  | Error e -> Error e
  | Ok false -> Error Closed
  | Ok true ->
    let hdr = Bytes.to_string hdr in
    if hdr.[0] <> magic0 || hdr.[1] <> magic1 then Error Bad_magic
    else if Char.code hdr.[2] <> version then Error (Bad_version (Char.code hdr.[2]))
    else begin
      let len = get_u32 hdr 4 in
      let crc = get_u32 hdr 8 in
      if len > max_payload then Error (Too_large len)
      else
        let payload = Bytes.create len in
        match really_read recv payload len "payload" with
        | Error e -> Error e
        | Ok false when len > 0 -> Error (Torn "payload")
        | Ok _ ->
          let payload = Bytes.to_string payload in
          if Int32.to_int (crc32 payload) land 0xFFFFFFFF <> crc then
            Error Bad_checksum
          else Ok (Char.code hdr.[3], payload)
    end

let decode s =
  let pos = ref 0 in
  let recv buf off len =
    let n = min len (String.length s - !pos) in
    Bytes.blit_string s !pos buf off n;
    pos := !pos + n;
    n
  in
  read recv
