(** Length-framed, checksummed wire frames.

    Every message on the wire is one frame:

    {v
      offset  size  field
      0       2     magic "PQ"
      2       1     protocol version (currently 1)
      3       1     frame type (opaque to this module; see Wire)
      4       4     payload length, big-endian
      8       4     CRC-32 of the payload, big-endian
      12      n     payload
    v}

    The module is pure over caller-supplied read functions so it can be
    unit-tested without sockets.  A frame is either read whole or
    rejected with a typed error: torn (short) reads, bad magic, an
    unsupported version, an oversized length, and checksum mismatches
    are all distinguished, and none of them raises. *)

val version : int
val header_len : int

val max_payload : int
(** Hard cap on payload length (8 MiB).  Larger declared lengths are
    rejected before any payload is read, so a corrupt length field
    cannot make the server buffer unbounded data. *)

val crc32 : string -> int32
(** Standard CRC-32 (IEEE 802.3, polynomial 0xEDB88320). *)

type error =
  | Closed  (** clean EOF at a frame boundary *)
  | Torn of string  (** EOF mid-frame: a short read *)
  | Bad_magic
  | Bad_version of int
  | Too_large of int
  | Bad_checksum

val error_to_string : error -> string

val encode : typ:int -> string -> string
(** [encode ~typ payload] is the complete frame as bytes on the wire.
    @raise Invalid_argument if [typ] is outside 0..255 or the payload
    exceeds {!max_payload}. *)

val read :
  (bytes -> int -> int -> int) -> (int * string, error) result
(** [read recv] pulls one frame using [recv buf off len] (a
    [Unix.read]-style function returning 0 at EOF) and returns
    [(typ, payload)].  Exceptions from [recv] (e.g. timeouts) pass
    through to the caller. *)

val decode : string -> (int * string, error) result
(** [decode s] parses exactly one frame from [s] (trailing garbage is
    ignored); convenience for tests. *)
