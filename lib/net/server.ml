module Fault = Resilience.Fault

type listen =
  | Tcp of string * int
  | Unix_path of string

let listen_to_string = function
  | Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p
  | Unix_path p -> "unix:" ^ p

let listen_of_string s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad listen address %S (want tcp:HOST:PORT or unix:PATH)" s)
  | Some i -> (
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match scheme with
    | "unix" -> Ok (Unix_path rest)
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "bad tcp address %S (want tcp:HOST:PORT)" s)
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 -> Ok (Tcp (host, p))
        | _ -> Error (Printf.sprintf "bad port %S" port)))
    | _ -> Error (Printf.sprintf "unknown scheme %S (want tcp: or unix:)" scheme))

type config = {
  admit : int;
  queue : int;
  retry_after_ms : float;
  default_deadline_ms : float option;
  poll_interval_s : float;
  fault_stall_s : float;
}

let default_config =
  {
    admit = 4;
    queue = 16;
    retry_after_ms = 50.0;
    default_deadline_ms = None;
    poll_interval_s = 0.05;
    fault_stall_s = 0.005;
  }

type session_slot = {
  sm : Mutex.t;
  session : Pcqe.Engine.Session.t;
  mutable pending : (int * Pcqe.Engine.proposal) option;
      (* latest proposal, parked under a single-use token *)
  mutable next_token : int;
}

type t = {
  ctx : Pcqe.Engine.context;
  config : config;
  obs : Obs.t option;
  lsock : Unix.file_descr;
  bound : listen;
  mutable published : Relational.Database.t;
      (* the one true database: accepted proposals are applied against
         it (serialized under [m]) and every query pulls it before
         answering, so an accept by one principal is visible to all —
         per-session caches revalidate through the epoch vectors *)
  m : Mutex.t;
  cond : Condition.t;  (* admission slots; also connection drain *)
  mutable running : bool;
  mutable in_flight : int;
  mutable queued : int;
  mutable live_conns : Unix.file_descr list;
  mutable conn_threads : int;
  sessions : (string, session_slot) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;
  mutable acceptor : Thread.t option;
}

(* Severed connection (injected fault or write failure): unwinds the
   connection loop; never escapes the connection thread. *)
exception Severed

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

(* Counters and gauges are updated under [t.m] only: Obs registries are
   single-writer and the server has many threads. *)
let incr_locked t name =
  (match Hashtbl.find_opt t.counters name with
  | Some r -> incr r
  | None -> Hashtbl.replace t.counters name (ref 1));
  Option.iter (fun o -> Obs.Metrics.incr o.Obs.metrics name) t.obs

let count t name = locked t (fun () -> incr_locked t name)

let refresh_gauges_locked t =
  Option.iter
    (fun o ->
      Obs.Metrics.set_gauge o.Obs.metrics "net.queue_depth" (float_of_int t.queued);
      Obs.Metrics.set_gauge o.Obs.metrics "net.in_flight" (float_of_int t.in_flight))
    t.obs

let now_ms () = Unix.gettimeofday () *. 1000.0

(* --- admission ----------------------------------------------------- *)

type admission = Admitted | Shed | Stopping

let admit t =
  locked t (fun () ->
      if not t.running then Stopping
      else if t.in_flight < t.config.admit then begin
        t.in_flight <- t.in_flight + 1;
        refresh_gauges_locked t;
        Admitted
      end
      else if t.queued >= t.config.queue then Shed
      else begin
        t.queued <- t.queued + 1;
        refresh_gauges_locked t;
        while t.in_flight >= t.config.admit && t.running do
          Condition.wait t.cond t.m
        done;
        t.queued <- t.queued - 1;
        if not t.running then begin
          refresh_gauges_locked t;
          Condition.broadcast t.cond;
          Stopping
        end
        else begin
          t.in_flight <- t.in_flight + 1;
          refresh_gauges_locked t;
          Admitted
        end
      end)

let release t =
  locked t (fun () ->
      t.in_flight <- t.in_flight - 1;
      refresh_gauges_locked t;
      Condition.signal t.cond)

(* --- socket I/O ---------------------------------------------------- *)

let really_write fd s =
  let b = Bytes.of_string s in
  let len = Bytes.length b in
  let sent = ref 0 in
  while !sent < len do
    let n = try Unix.write fd b !sent (len - !sent) with Unix.Unix_error (EINTR, _, _) -> 0 in
    if n = 0 && !sent < len then
      (* only EINTR yields 0 here; a dead peer raises EPIPE instead *)
      ()
    else sent := !sent + n
  done

let rec recv_blocking fd buf off len =
  try Unix.read fd buf off len with Unix.Unix_error (EINTR, _, _) -> recv_blocking fd buf off len

(* Wait until the connection has bytes (start of a frame) or the server
   is stopping.  Between frames we poll so [stop] is prompt; once a
   frame starts, reads block — [stop] shuts the socket down, which
   unblocks them. *)
let rec wait_readable t fd =
  if not t.running then `Stopped
  else
    match Unix.select [ fd ] [] [] t.config.poll_interval_s with
    | [], _, _ -> wait_readable t fd
    | _ -> `Ready
    | exception Unix.Unix_error (EINTR, _, _) -> wait_readable t fd

(* --- responses ----------------------------------------------------- *)

let send_response t fd resp =
  (match Fault.hit Fault.site_net_write with
  | () -> ()
  | exception Fault.Injected _ ->
    count t "net.fault.write";
    raise Severed);
  let typ, payload = Wire.encode_response resp in
  match really_write fd (Frame.encode ~typ payload) with
  | () -> ()
  | exception Unix.Unix_error _ -> raise Severed

let terminal t fd resp counter =
  count t counter;
  send_response t fd resp

(* --- request execution --------------------------------------------- *)

let slot_for t user =
  locked t (fun () ->
      match Hashtbl.find_opt t.sessions user with
      | Some s -> s
      | None ->
        let s =
          {
            sm = Mutex.create ();
            session = Pcqe.Engine.Session.create t.ctx;
            pending = None;
            next_token = 1;
          }
        in
        Hashtbl.replace t.sessions user s;
        s)

let with_slot slot f =
  Mutex.lock slot.sm;
  Fun.protect ~finally:(fun () -> Mutex.unlock slot.sm) f

let run_query t fd ~user ~purpose ~perc ~sql ~deadline_ms ~queued_ms =
  let eff_deadline =
    match deadline_ms with
    | Some d -> Some d
    | None -> t.config.default_deadline_ms
  in
  let remaining = Option.map (fun d -> d -. queued_ms) eff_deadline in
  match remaining with
  | Some r when r <= 0.0 ->
    terminal t fd
      (Wire.Timeout { reason = "deadline expired in admission queue" })
      "net.timeouts"
  | _ -> (
    let slot = slot_for t user in
    let outcome =
      with_slot slot (fun () ->
          (* serve against the latest published database: another
             principal's accepted proposal must be visible here *)
          let published = locked t (fun () -> t.published) in
          let base = Pcqe.Engine.Session.context slot.session in
          let base =
            if base.Pcqe.Engine.db == published then base
            else { base with Pcqe.Engine.db = published }
          in
          let ctx =
            match remaining with
            | Some r -> { base with Pcqe.Engine.deadline = Resilience.Deadline.Wall_ms r }
            | None -> base
          in
          Pcqe.Engine.Session.set_context slot.session ctx;
          match
            Pcqe.Engine.Session.answer slot.session
              {
                Pcqe.Engine.query = Pcqe.Query.Sql sql;
                user;
                purpose;
                perc;
              }
          with
          | Ok resp ->
            let token =
              Option.map
                (fun p ->
                  let tok = slot.next_token in
                  slot.next_token <- tok + 1;
                  slot.pending <- Some (tok, p);
                  tok)
                resp.Pcqe.Engine.proposal
            in
            Ok (Wire.answer_of_response ?proposal_token:token resp)
          | Error msg -> Error msg
          | exception Fault.Injected what -> Error ("fault injected: " ^ what)
          | exception exn -> Error ("internal: " ^ Printexc.to_string exn))
    in
    match outcome with
    | Ok a -> terminal t fd (Wire.Answer a) "net.answers"
    | Error msg -> terminal t fd (Wire.Err msg) "net.errors")

let run_accept t fd ~user ~token =
  match locked t (fun () -> Hashtbl.find_opt t.sessions user) with
  | None -> terminal t fd (Wire.Err "unknown or expired proposal token") "net.errors"
  | Some slot -> (
    let outcome =
      with_slot slot (fun () ->
          match slot.pending with
          | Some (tok, p) when tok = token ->
            slot.pending <- None (* single-use: a replay cannot re-apply *);
            (* apply against the latest published database and publish
               the result, all under the server lock: concurrent accepts
               by different principals form one linear history *)
            (match
               locked t (fun () ->
                   let ctx = Pcqe.Engine.Session.context slot.session in
                   Pcqe.Engine.Session.set_context slot.session
                     { ctx with Pcqe.Engine.db = t.published };
                   Pcqe.Engine.Session.accept_proposal slot.session p;
                   t.published <-
                     (Pcqe.Engine.Session.context slot.session).Pcqe.Engine.db)
             with
            | () ->
              Ok
                (Wire.Accepted
                   {
                     applied = List.length p.Pcqe.Engine.increments;
                     cost = p.Pcqe.Engine.cost;
                   })
            | exception exn -> Error ("internal: " ^ Printexc.to_string exn))
          | _ -> Error "unknown or expired proposal token")
    in
    match outcome with
    | Ok resp -> terminal t fd resp "net.accepted"
    | Error msg -> terminal t fd (Wire.Err msg) "net.errors")

let handle_request t fd ~typ ~payload =
  match Wire.decode_request ~typ payload with
  | Error msg ->
    count t "net.malformed";
    terminal t fd (Wire.Err ("malformed request: " ^ msg)) "net.errors"
  | Ok Wire.Ping -> terminal t fd Wire.Pong "net.pings"
  | Ok req -> (
    let t0 = now_ms () in
    match admit t with
    | Stopping -> terminal t fd (Wire.Err "server stopping") "net.errors"
    | Shed ->
      terminal t fd
        (Wire.Overloaded { retry_after_ms = t.config.retry_after_ms })
        "net.shed"
    | Admitted ->
      Fun.protect
        ~finally:(fun () -> release t)
        (fun () ->
          (match Fault.hit Fault.site_net_delay with
          | () -> ()
          | exception Fault.Injected _ ->
            (* a stalled peer mid-execution: the request proceeds, late,
               while holding its admission slot — exactly the overload
               shape the shedding tests arm deterministically *)
            count t "net.fault.delay";
            Unix.sleepf t.config.fault_stall_s);
          let queued_ms = now_ms () -. t0 in
          match req with
          | Wire.Query { user; purpose; perc; sql; deadline_ms } ->
            run_query t fd ~user ~purpose ~perc ~sql ~deadline_ms ~queued_ms
          | Wire.Accept { user; token } -> run_accept t fd ~user ~token
          | Wire.Ping -> assert false))

(* --- connection loop ----------------------------------------------- *)

let serve_conn t fd =
  let rec loop () =
    match wait_readable t fd with
    | `Stopped -> ()
    | `Ready -> (
      (match Fault.hit Fault.site_net_read with
      | () -> ()
      | exception Fault.Injected _ ->
        count t "net.fault.read";
        raise Severed);
      match Frame.read (recv_blocking fd) with
      | Error Frame.Closed -> ()
      | Error e ->
        (* torn or malformed framing: sync is lost, so reject the frame,
           tell the peer (best effort) and drop only this connection *)
        count t "net.malformed";
        (try send_response t fd (Wire.Err (Frame.error_to_string e))
         with Severed -> ());
        ()
      | Ok (typ, payload) ->
        count t "net.requests";
        handle_request t fd ~typ ~payload;
        loop ())
  in
  (try loop () with
  | Severed -> ()
  | Unix.Unix_error _ -> ());
  (try Unix.close fd with Unix.Unix_error _ -> ());
  locked t (fun () ->
      t.live_conns <- List.filter (fun c -> c <> fd) t.live_conns;
      t.conn_threads <- t.conn_threads - 1;
      Condition.broadcast t.cond)

let accept_loop t =
  while t.running do
    match Unix.accept ~cloexec:true t.lsock with
    | fd, _ -> (
      match Fault.hit Fault.site_net_accept with
      | exception Fault.Injected _ ->
        (* the peer vanishes before its first byte *)
        count t "net.fault.accept";
        (try Unix.close fd with Unix.Unix_error _ -> ())
      | () ->
        count t "net.connections";
        (match t.bound with
        | Tcp _ -> ( try Unix.setsockopt fd Unix.TCP_NODELAY true with Unix.Unix_error _ -> ())
        | Unix_path _ -> ());
        locked t (fun () ->
            t.live_conns <- fd :: t.live_conns;
            t.conn_threads <- t.conn_threads + 1);
        ignore (Thread.create (fun () -> serve_conn t fd) ()))
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> if t.running then Thread.yield () else ()
  done

(* --- lifecycle ----------------------------------------------------- *)

let bind_listen spec =
  match spec with
  | Tcp (host, port) ->
    let addr =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_loopback
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    Unix.bind fd (Unix.ADDR_INET (addr, port));
    Unix.listen fd 64;
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (a, p) -> Tcp (Unix.string_of_inet_addr a, p)
      | _ -> spec
    in
    (fd, bound)
  | Unix_path path ->
    (try Unix.unlink path with Unix.Unix_error _ -> ());
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    (fd, Unix_path path)

let start ?obs ?(config = default_config) ~ctx spec =
  (* a peer closing mid-write must surface as EPIPE, not kill the
     process: every terminal-response path handles the exception *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  if config.admit < 1 then invalid_arg "Server.start: admit must be >= 1";
  if config.queue < 0 then invalid_arg "Server.start: queue must be >= 0";
  let lsock, bound = bind_listen spec in
  (* accept must wake periodically to observe the stop flag *)
  (try Unix.setsockopt_float lsock Unix.SO_RCVTIMEO config.poll_interval_s
   with Unix.Unix_error _ -> ());
  let ctx =
    { ctx with Pcqe.Engine.obs = None; caches = None; profile = false }
  in
  let t =
    {
      ctx;
      config;
      obs;
      lsock;
      bound;
      published = ctx.Pcqe.Engine.db;
      m = Mutex.create ();
      cond = Condition.create ();
      running = true;
      in_flight = 0;
      queued = 0;
      live_conns = [];
      conn_threads = 0;
      sessions = Hashtbl.create 16;
      counters = Hashtbl.create 16;
      acceptor = None;
    }
  in
  locked t (fun () -> refresh_gauges_locked t);
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let address t = t.bound

let stop ?(drain_deadline_s = 0.0) t =
  let was_running =
    locked t (fun () ->
        if not t.running then false
        else begin
          t.running <- false;
          (* wake queued admitters: they observe the stop flag and answer
             "server stopping" instead of waiting for a slot *)
          Condition.broadcast t.cond;
          true
        end)
  in
  if was_running || t.acceptor <> None then begin
    (* graceful drain: in-flight requests (already admitted) run to
       their terminal response, bounded by the deadline — new frames
       are refused the moment the flag flips, so in_flight is monotone
       non-increasing here *)
    if was_running && drain_deadline_s > 0.0 then begin
      let deadline = Unix.gettimeofday () +. drain_deadline_s in
      let rec drain () =
        let busy = locked t (fun () -> t.in_flight > 0 || t.queued > 0) in
        if busy && Unix.gettimeofday () < deadline then begin
          Unix.sleepf 0.002;
          drain ()
        end
      in
      drain ()
    end;
    let conns = locked t (fun () -> t.live_conns) in
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      conns;
    (match t.acceptor with
    | Some th ->
      t.acceptor <- None;
      (try Thread.join th with _ -> ())
    | None -> ());
    (try Unix.close t.lsock with Unix.Unix_error _ -> ());
    (match t.bound with
    | Unix_path p -> ( try Unix.unlink p with Unix.Unix_error _ -> ())
    | Tcp _ -> ());
    locked t (fun () ->
        while t.conn_threads > 0 do
          Condition.wait t.cond t.m
        done)
  end

let counter_value t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

let requests_served t =
  List.fold_left
    (fun acc n -> acc + counter_value t n)
    0
    [ "net.answers"; "net.shed"; "net.timeouts"; "net.errors"; "net.pings"; "net.accepted" ]

let stats t =
  locked t (fun () ->
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
      |> List.sort (fun (a, _) (b, _) -> compare a b))

(* shard-level serving gauges, refreshed on demand — a metrics export is
   the natural moment; a per-request refresh would cost a scan of every
   session's cache.  Epochs and owned-tuple counts come from the
   published database; conf-cache occupancy is summed across the live
   per-principal sessions, each read under its own slot mutex. *)
let refresh_shard_gauges t =
  match t.obs with
  | None -> ()
  | Some o ->
    let db, slots =
      locked t (fun () ->
          (t.published, Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions []))
    in
    let shards = Relational.Database.shard_count db in
    let epochs = Relational.Database.confidence_vector db in
    let tuples = Relational.Database.shard_tuples db in
    let sizes = Array.make shards 0 in
    List.iter
      (fun slot ->
        Mutex.lock slot.sm;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock slot.sm)
          (fun () ->
            match
              (Pcqe.Engine.Session.context slot.session).Pcqe.Engine.caches
            with
            | None -> ()
            | Some c ->
              Array.iteri
                (fun i n -> sizes.(i) <- sizes.(i) + n)
                (Pcqe.Conf_cache.shard_sizes (Pcqe.Caches.conf c) ~shards)))
      slots;
    for i = 0 to shards - 1 do
      let g name = Printf.sprintf "shard.%s{shard=\"%d\"}" name i in
      Obs.Metrics.set_gauge o.Obs.metrics (g "epoch") (float_of_int epochs.(i));
      Obs.Metrics.set_gauge o.Obs.metrics (g "tuples")
        (float_of_int tuples.(i));
      Obs.Metrics.set_gauge o.Obs.metrics (g "conf_cache_size")
        (float_of_int sizes.(i))
    done
