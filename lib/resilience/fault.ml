exception Injected of string

let site_pool_chunk = "pool.chunk"
let site_state_eval = "state.eval"
let site_prob_mc = "prob.mc"
let site_net_accept = "net.accept"
let site_net_read = "net.read"
let site_net_write = "net.write"
let site_net_delay = "net.delay"

let all_sites =
  [
    site_pool_chunk;
    site_state_eval;
    site_prob_mc;
    site_net_accept;
    site_net_read;
    site_net_write;
    site_net_delay;
  ]

(* Registry of known sites.  Plans are validated against it so a typo in
   a chaos plan fails loudly instead of silently never firing. *)
let registry : string list Atomic.t = Atomic.make all_sites

let rec register_site s =
  let cur = Atomic.get registry in
  if not (List.mem s cur) then
    if not (Atomic.compare_and_set registry cur (s :: cur)) then register_site s

let registered_sites () = List.sort compare (Atomic.get registry)

let validate_sites sites =
  let known = Atomic.get registry in
  match List.filter (fun s -> not (List.mem s known)) sites with
  | [] -> ()
  | unknown ->
    invalid_arg
      (Printf.sprintf "Fault: unknown site%s %s (registered: %s)"
         (if List.length unknown > 1 then "s" else "")
         (String.concat ", " unknown)
         (String.concat ", " (registered_sites ())))

type plan = {
  seed : int;
  rate : float;
  max_injections : int;
  counters : (string * int Atomic.t) list;
      (* fixed at creation: the hot path is read-only *)
  injected : int Atomic.t;
}

let plan ?(rate = 0.05) ?max_injections ?sites ~seed () =
  let rate = Float.min 1.0 (Float.max 0.0 rate) in
  let sites =
    match sites with
    | None -> registered_sites ()
    | Some ss ->
      validate_sites ss;
      List.sort_uniq compare ss
  in
  {
    seed;
    rate;
    max_injections = (match max_injections with None -> max_int | Some m -> m);
    counters = List.map (fun s -> (s, Atomic.make 0)) sites;
    injected = Atomic.make 0;
  }

let current : plan option Atomic.t = Atomic.make None

let arm p =
  validate_sites (List.map fst p.counters);
  Atomic.set current (Some p)

let disarm () = Atomic.set current None
let armed () = Atomic.get current <> None

let with_plan p f =
  arm p;
  Fun.protect ~finally:disarm f

(* Per-domain suppression depth: recovery code must not be injectable. *)
let suppress_key = Domain.DLS.new_key (fun () -> ref 0)

let protect f =
  let d = Domain.DLS.get suppress_key in
  incr d;
  Fun.protect ~finally:(fun () -> decr d) f

(* Whether the [i]-th hit of [site] injects is a pure function of
   (seed, site, i): a SplitMix64 generator keyed by mixing the three. *)
let decides p site i =
  let key =
    Int64.add
      (Int64.mul (Int64.of_int p.seed) 0x9E3779B97F4A7C15L)
      (Int64.add
         (Int64.mul (Int64.of_int (Hashtbl.hash site)) 0xBF58476D1CE4E5B9L)
         (Int64.of_int i))
  in
  Prng.Splitmix.coin (Prng.Splitmix.create key) p.rate

let hit site =
  match Atomic.get current with
  | None -> ()
  | Some p -> (
    if !(Domain.DLS.get suppress_key) = 0 then
      match List.assoc_opt site p.counters with
      | None -> ()
      | Some c ->
        let i = Atomic.fetch_and_add c 1 in
        if Atomic.get p.injected < p.max_injections && decides p site i then begin
          Atomic.incr p.injected;
          raise (Injected (Printf.sprintf "%s#%d" site i))
        end)

let injected p = Atomic.get p.injected

let hits p =
  List.map (fun (s, c) -> (s, Atomic.get c)) p.counters
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let sites p = List.map fst p.counters |> List.sort compare
let seed p = p.seed
let rate p = p.rate

let max_injections p =
  if p.max_injections = max_int then None else Some p.max_injections
