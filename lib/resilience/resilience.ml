(** Resilience primitives: cooperative deadlines and seeded fault
    injection.  See {!Deadline} and {!Fault}. *)

module Deadline = Deadline
module Fault = Fault
