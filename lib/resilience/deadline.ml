type spec = No_deadline | Wall_ms of float | Logical of int

type mode =
  | Unbounded
  | Wall of { clock : Obs.Clock.t; expires_at : float; budget_ms : float }
  | Budget of { budget : int }

type t = {
  mode : mode;
  mutable ticks : int;
  mutable tripped : bool;
  mutable cancel_reason : string option;
}

let never = { mode = Unbounded; ticks = 0; tripped = false; cancel_reason = None }

let start ?(clock = Obs.Clock.wall) spec =
  match spec with
  | No_deadline -> never
  | Wall_ms b ->
    if not (b > 0.0) then
      invalid_arg (Printf.sprintf "Deadline.start: wall budget %g must be > 0" b);
    {
      mode = Wall { clock; expires_at = clock () +. (b /. 1000.0); budget_ms = b };
      ticks = 0;
      tripped = false;
      cancel_reason = None;
    }
  | Logical n ->
    if n < 0 then
      invalid_arg (Printf.sprintf "Deadline.start: logical budget %d must be >= 0" n);
    {
      mode = Budget { budget = n };
      ticks = 0;
      tripped = false;
      cancel_reason = None;
    }

let wall_ms ?clock b = start ?clock (Wall_ms b)
let logical n = start (Logical n)

let spec_of t =
  match t.mode with
  | Unbounded -> No_deadline
  | Wall { budget_ms; _ } -> Wall_ms budget_ms
  | Budget { budget } -> Logical budget

let active t = t.mode <> Unbounded

let tick ?(by = 1) t =
  match t.mode with Unbounded -> () | Wall _ | Budget _ -> t.ticks <- t.ticks + by

let used t = t.ticks

let expired t =
  match t.mode with
  | Unbounded -> false
  | _ when t.tripped -> true
  | Wall { clock; expires_at; _ } ->
    if clock () > expires_at then begin
      t.tripped <- true;
      true
    end
    else false
  | Budget { budget } ->
    if t.ticks >= budget then begin
      t.tripped <- true;
      true
    end
    else false

let cancel t ?reason () =
  match t.mode with
  | Unbounded -> ()
  | _ ->
    t.tripped <- true;
    (match reason with Some _ -> t.cancel_reason <- reason | None -> ())

let reason t =
  match t.cancel_reason with
  | Some r -> r
  | None -> (
    match t.mode with
    | Unbounded -> "no deadline"
    | Wall { budget_ms; _ } ->
      Printf.sprintf "wall deadline (%gms) exceeded" budget_ms
    | Budget { budget } ->
      Printf.sprintf "logical budget (%d ticks) exhausted" budget)

let split t n =
  if n <= 0 then invalid_arg "Deadline.split: n must be positive";
  match t.mode with
  | Unbounded -> Array.init n (fun _ -> never)
  | Wall _ ->
    Array.init n (fun _ ->
        { mode = t.mode; ticks = 0; tripped = false; cancel_reason = None })
  | Budget { budget } ->
    let remaining = if t.tripped then 0 else max 0 (budget - t.ticks) in
    let share = remaining / n in
    Array.init n (fun _ ->
        {
          mode = Budget { budget = share };
          ticks = 0;
          tripped = false;
          cancel_reason = None;
        })

let absorb t subs =
  match t.mode with
  | Unbounded -> ()
  | Wall _ | Budget _ ->
    Array.iter (fun s -> if s != never then t.ticks <- t.ticks + s.ticks) subs
