(** Cooperative deadline / budget tokens.

    A token bounds how much work a solver (or any cooperative loop) may
    do before it must stop and return its best-so-far answer.  Expiry is
    never delivered asynchronously: the worker polls {!expired} (or calls
    {!tick}, which only updates accounting) at its own safe points, so a
    loop is interrupted only at states it chose, and can always hand back
    a consistent partial result.

    Two bounded modes:

    - {b Wall-clock} ([Wall_ms b]): expires once [clock () - t0] exceeds
      [b] milliseconds.  The clock is an {!Obs.Clock.t}, so tests can
      drive expiry deterministically with {!Obs.Clock.counter}.
    - {b Logical} ([Logical n]): expires after [n] ticks, where a tick is
      one unit of solver work (a branch-and-bound node, a greedy gain
      probe, an annealing move).  Logical budgets are independent of
      machine speed and of the [jobs] level, so budget-bounded runs are
      bit-identical and reproducible — this is the mode tests and qcheck
      properties use.

    Tokens are single-writer: only the loop that owns a token may [tick]
    it.  To bound a parallel phase, {!split} the remaining budget into
    per-task sub-tokens {e before} the fan-out (each task owns its share,
    so the outcome does not depend on scheduling) and {!absorb} the
    children's consumption afterwards. *)

type spec =
  | No_deadline  (** unbounded — every check is a no-op *)
  | Wall_ms of float  (** wall-clock budget in milliseconds, must be > 0 *)
  | Logical of int  (** deterministic budget in ticks, must be >= 0 *)

type t

val never : t
(** The unbounded token: [tick] is a no-op, [expired] is always [false].
    Shared — safe to pass to concurrent tasks. *)

val start : ?clock:Obs.Clock.t -> spec -> t
(** Fresh token.  For [Wall_ms] the budget starts counting now, against
    [clock] (default {!Obs.Clock.wall}).  [clock] is ignored for the
    other modes.
    @raise Invalid_argument on a non-positive wall budget or negative
    logical budget. *)

val wall_ms : ?clock:Obs.Clock.t -> float -> t
(** [wall_ms b] is [start (Wall_ms b)]. *)

val logical : int -> t
(** [logical n] is [start (Logical n)]. *)

val spec_of : t -> spec
(** The spec this token was started from ([No_deadline] for {!never}). *)

val active : t -> bool
(** [true] iff the token can ever expire (i.e. not [No_deadline]) — lets
    hot loops skip per-iteration polling entirely when unbounded. *)

val tick : ?by:int -> t -> unit
(** Record [by] (default 1) units of work.  Never raises; expiry is
    observed with {!expired}.  No-op on unbounded tokens. *)

val used : t -> int
(** Ticks recorded so far (including those absorbed from sub-tokens). *)

val expired : t -> bool
(** Whether the budget is exhausted (or the token was {!cancel}ed).
    Sticky: once [true], stays [true]. *)

val cancel : t -> ?reason:string -> unit -> unit
(** Force expiry now (e.g. user interrupt).  [reason] overrides the
    default expiry message.  No-op on {!never}. *)

val reason : t -> string
(** Human-readable explanation of why the token expired, e.g.
    ["wall deadline (50ms) exceeded"] or
    ["logical budget (1000 ticks) exhausted"].  Meaningful once
    {!expired} is [true]. *)

val split : t -> int -> t array
(** [split t n] carves [n] independent sub-tokens out of [t]'s remaining
    budget, for bounding [n] parallel tasks deterministically:

    - logical: each child gets [floor (remaining / n)] ticks (children of
      an expired or starved parent get 0 ticks, i.e. are born expired);
    - wall: each child counts against the {e same} absolute deadline as
      the parent, with its own tick accounting;
    - unbounded: children are unbounded.

    The division is a function of the parent's state only, never of
    scheduling, so logical-budget runs stay bit-identical at any [jobs]
    level.  [n] must be positive. *)

val absorb : t -> t array -> unit
(** [absorb t subs] adds the children's consumed ticks back into [t]'s
    accounting (and, for logical tokens, its budget consumption).  Call
    once after joining the parallel tasks that owned [subs]. *)
