(** Seeded, deterministic fault injection.

    Production code is instrumented with named {e injection sites} —
    bare [Fault.hit "site"] calls at the places where real deployments
    fail (an evaluator raising, a pool worker dying, a sampler being cut
    off).  With no plan armed a hit is a few-nanosecond no-op, so the
    hooks are always compiled in.  The chaos test suite arms a {!plan}
    and the same sites then raise {!Injected} at deterministically
    chosen hit indices.

    {b Determinism.}  Whether the [i]-th hit of site [s] injects is a
    pure function of [(seed, s, i)] — a SplitMix64 coin keyed by the
    three — and each site keeps its own atomic hit counter.  Under a
    deterministic workload the set of injected (site, index) pairs is
    therefore reproducible from the seed alone; it does not depend on
    how domains interleave.

    {b Suppression.}  Recovery code (rollback paths, state repair) runs
    under {!protect}, which disables injection for the current domain —
    faults model the world failing, not the cleanup handler, and a
    recovery path that could itself be injected would make the
    consistency invariants untestable. *)

exception Injected of string
(** Raised by {!hit} when the armed plan selects this hit.  The payload
    is ["<site>#<hit-index>"]. *)

(** {1 Sites}

    The instrumented sites, for [?sites] filters. *)

val site_pool_chunk : string
(** ["pool.chunk"] — before each chunk body claimed in
    [Exec.Pool.run_chunks] (models a worker task blowing up). *)

val site_state_eval : string
(** ["state.eval"] — before each full lineage evaluation inside
    [Optimize.State] (models the evaluator raising mid-commit). *)

val site_prob_mc : string
(** ["prob.mc"] — before each Monte-Carlo sampling chunk in
    [Lineage.Prob.monte_carlo] (models the sampler being cut off). *)

val site_net_accept : string
(** ["net.accept"] — after each accepted server connection (models the
    peer vanishing before its first byte). *)

val site_net_read : string
(** ["net.read"] — before each request frame read in [Net.Server]
    (models a connection severed mid-request). *)

val site_net_write : string
(** ["net.write"] — before each response frame write (models a
    connection severed before the response lands). *)

val site_net_delay : string
(** ["net.delay"] — before request execution (models a stalled peer or
    network; injection stalls rather than raises at the call site). *)

val all_sites : string list
(** The built-in sites above. *)

val register_site : string -> unit
(** Add a site name to the registered-site list so plans naming it
    validate.  Idempotent; built-in sites are pre-registered. *)

val registered_sites : unit -> string list
(** All currently registered sites, sorted. *)

(** {1 Plans} *)

type plan

val plan :
  ?rate:float -> ?max_injections:int -> ?sites:string list -> seed:int -> unit -> plan
(** [plan ~seed ()] is a fresh plan injecting each hit independently
    with probability [rate] (default [0.05], clamped to [0,1]), at most
    [max_injections] times in total (default unlimited), restricted to
    [sites] (default: every registered site).

    @raise Invalid_argument if any of [sites] is not registered — a
    typo'd site would otherwise silently never fire. *)

val arm : plan -> unit
(** Make [p] the active plan (global, visible to every domain).
    Re-validates the plan's sites against {!registered_sites}.
    @raise Invalid_argument on an unknown site. *)

val disarm : unit -> unit
(** Deactivate injection; hits become no-ops again. *)

val armed : unit -> bool

val with_plan : plan -> (unit -> 'a) -> 'a
(** [with_plan p f] arms [p], runs [f], and always disarms — including
    on exception. *)

(** {1 Instrumentation} *)

val hit : string -> unit
(** Mark one hit of the named site.  No-op unless a plan is armed, the
    site is selected, and the current domain is not inside {!protect};
    otherwise counts the hit and raises {!Injected} if the seeded coin
    chooses this index. *)

val protect : (unit -> 'a) -> 'a
(** Run [f] with injection suppressed for the current domain.
    Re-entrant; always restores on exit. *)

(** {1 Accounting} *)

val injected : plan -> int
(** Total faults this plan has injected. *)

val hits : plan -> (string * int) list
(** Per-site hit counts (injected or not), sorted by site name. *)

val sites : plan -> string list
(** The sites this plan covers, sorted. *)

val seed : plan -> int
val rate : plan -> float

val max_injections : plan -> int option
(** [None] when unlimited. *)
