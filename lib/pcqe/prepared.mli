(** Prepared queries: the principal-independent front of the pipeline,
    compiled once and reused.

    Everything up to (and including) lineage-carrying evaluation depends
    only on the query text, the view store, and the database contents —
    never on the requesting principal or the current confidence vector.
    A [Prepared.t] captures that prefix: parse → view expansion →
    rewrite, stamped with the epochs it was compiled against
    ({!Relational.Database.structural_epoch},
    {!Relational.Views.epoch}), plus a one-slot cache of the evaluated
    annotated result keyed by structural epoch.

    Validity is stamp {e equality}: any schema/tuple mutation or any
    view (re)definition yields fresh stamps and silently retires the
    prepared query (see {!Plan_cache}).  Confidence-only mutations leave
    both stamps unchanged — plans and evaluated lineage stay valid, only
    the per-formula confidences must be refreshed ({!Conf_cache}). *)

type t

val compile :
  ?obs:Obs.t ->
  db:Relational.Database.t ->
  views:Relational.Views.t ->
  Query.t ->
  (t, string) result
(** Parse (when SQL), expand views, rewrite.  With [obs] set, records the
    same ["parse/plan"], ["view-expand"] and ["rewrite"] spans the
    one-shot engine path records — a cold prepare is byte-identical work
    to a cold answer's front end. *)

val key_of_query : Query.t -> string
(** The plan-cache key: the SQL text, or the rendered plan. *)

val key : t -> string
val plan : t -> Relational.Algebra.t
(** The view-expanded, rewritten plan. *)

val base_relations : t -> string list
(** Base relations of the final plan — what RBAC checks per principal. *)

val safe : t -> bool
(** The {!Relational.Safe_plan} verdict for the compiled plan, decided
    once at prepare time: [true] means every result row provably carries
    read-once lineage, so {!eval_conf} can compute confidences inline. *)

val structural_epoch : t -> int

val structural_vector : t -> int array
(** The per-shard structural epoch vector pinned at compile time
    ({!Relational.Database.structural_vector}).  Validity and the
    evaluation memo key on this composite stamp, not the scalar: a
    shard re-partition retires the entry even though contents (and the
    scalar epoch) never moved, while an insert into one shard retires
    it through that shard's slot alone. *)

val views_epoch : t -> int

val valid : t -> db:Relational.Database.t -> views:Relational.Views.t -> bool
(** [true] iff the structural vector and the views stamp still match —
    the plan (and any cached evaluation) may be reused against this
    database and view store. *)

val eval :
  ?obs:Obs.t ->
  ?pool:Exec.Pool.t ->
  t ->
  db:Relational.Database.t ->
  (Relational.Eval.annotated, string) result
(** Evaluate the plan through the sharded scatter/gather engine
    ({!Relational.Sharded}), reusing the cached annotated result when
    the database's structural vector still matches (counted as
    [serving.eval_reused]).  The cache holds one vector: a structural
    mutation re-evaluates and replaces it.  [pool] parallelizes the
    per-shard scatter (and columnar mask filling); results are
    independent of the jobs count. *)

val eval_conf :
  ?obs:Obs.t ->
  ?pool:Exec.Pool.t ->
  t ->
  db:Relational.Database.t ->
  (Relational.Eval.annotated * float array option, string) result
(** {!eval} plus the safe-plan confidence fast path: when {!safe} and
    {!Lineage.Circuit.enabled}, also returns per-row confidences
    (index-aligned with the result rows) computed during batch
    evaluation — bitwise what the degradation ladder would report for
    the same rows.  Confidences are memoized per confidence vector
    alongside the structural-vector row memo; a confidence-only mutation
    refreshes them with one linear pass.  [None] means the plan is not
    safe (or the fast path is off) and the caller must price the
    ladder/cache path as before. *)
