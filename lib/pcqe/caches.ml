type t = { plans : Plan_cache.t; conf : Conf_cache.t }

let create ?plan_capacity ?conf_max_entries () =
  {
    plans = Plan_cache.create ?capacity:plan_capacity ();
    conf = Conf_cache.create ?max_entries:conf_max_entries ();
  }

let plans t = t.plans
let conf t = t.conf

let stats t =
  [
    ("plans.entries", Plan_cache.length t.plans);
    ("prepared.hit", Plan_cache.hits t.plans);
    ("prepared.miss", Plan_cache.misses t.plans);
    ("prepared.evict", Plan_cache.evictions t.plans);
    ("conf.entries", Conf_cache.length t.conf);
    ("serving.reused_classes", Conf_cache.reused t.conf);
    ("serving.recomputed_classes", Conf_cache.recomputed t.conf);
    ("serving.invalidated_classes", Conf_cache.invalidated t.conf);
  ]

(* first-class gauges for metrics export: last-write-wins, so refreshing
   after every served answer keeps the exported values live *)
let export_gauges t obs =
  List.iter
    (fun (k, v) -> Obs.set_gauge obs ("cache." ^ k) (float_of_int v))
    (stats t)

let stats_to_string t =
  String.concat "\n"
    (List.map (fun (k, v) -> Printf.sprintf "  %-28s %d" k v) (stats t))

let clear t =
  Plan_cache.clear t.plans;
  Conf_cache.clear t.conf
