(** Per-epoch confidence cache, keyed by deduplicated lineage class.

    Result confidence depends only on the lineage formula and the
    database's confidence vector — not on the principal.  This cache
    memoizes confidence per formula {e structure} (via
    {!Lineage.Formula.Table}, the same hash-consing notion the solver
    stack uses for its evaluation classes), so answering one query for N
    principals — or re-answering it after a proposal was accepted —
    computes each distinct lineage class once.

    {b Invalidation} is driven per shard.  On every access the cache
    compares its synced epoch vector with the live
    {!Relational.Database.confidence_vector}; for each shard whose slot
    moved it asks {!Relational.Database.shard_changed_since} for the
    dirty base tuples and drops exactly the classes whose formula
    mentions one (counted as [serving.invalidated_classes]).  When a
    shard's bounded change log cannot answer — the cache fell too far
    behind, or the database diverged from the cached history — only that
    shard's classes are flushed (every class indexed under a base tuple
    the shard owns); classes whose lineage lives entirely on other
    shards survive.  A shard-layout change
    ({!Relational.Database.with_shards}) flushes wholesale: per-shard
    history does not span a re-partition.  Either way a lookup never
    returns a confidence computed from a stale vector; property tests
    pin warm results bit-identical to cold recomputation.

    Exact confidences ({!confidence}) and degradation-ladder estimates
    ({!estimate}) live in separate tables: the two modes answer
    different questions for entangled lineage, and a request must never
    observe the other mode's value.  Hits count
    [serving.reused_classes], misses [serving.recomputed_classes]. *)

type value = Exact of float | Estimate of Lineage.Approx.estimate

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] (default 65 536, counting both tables) bounds memory:
    reaching it flushes the cache wholesale before the next store.
    @raise Invalid_argument when [max_entries < 1]. *)

val confidence :
  ?obs:Obs.t -> t -> db:Relational.Database.t -> Lineage.Formula.t -> float
(** The exact confidence of the formula under [db]'s confidence vector —
    cached, or computed via {!Lineage.Prob.confidence} (the cold path's
    evaluator) and stored.  With the circuit fast path on
    ({!Lineage.Circuit.enabled}), two shortcuts apply, both bitwise
    value-preserving: a single-[Var] formula answers with one
    base-confidence lookup (tier ["var"], no cache traffic), and a
    non-read-once class inside the Shannon exactness domain evaluates a
    compiled d-DNNF circuit — built once per class, kept across
    confidence epochs, re-evaluated in one linear pass (counted as
    [ladder.circuit_build] / [ladder.circuit_reeval]; a node-cap
    overflow counts [ladder.circuit_fallback] and the ladder answers). *)

val confidence_tiered :
  ?obs:Obs.t ->
  t ->
  db:Relational.Database.t ->
  Lineage.Formula.t ->
  float * string
(** {!confidence} plus the tier label that produced the value — ["var"],
    ["cached"], ["circuit"], ["read_once"] or ["shannon"] — for
    per-tuple auditability ([pcqe explain]). *)

val estimate :
  ?obs:Obs.t ->
  ?pool:Exec.Pool.t ->
  ?on_tier:(Lineage.Approx.tier -> unit) ->
  t ->
  db:Relational.Database.t ->
  Lineage.Formula.t ->
  Lineage.Approx.estimate
(** Ladder ({!Lineage.Approx.confidence}) analogue of {!confidence}, for
    the [mc_fallback] path.  Estimates are reproducible per formula
    (the Monte-Carlo seed derives from the formula hash), so a cached
    estimate is bit-identical to recomputation — with or without
    [pool].  [on_tier] fires only on a miss (the rung that answered a
    cached class was already reported when it was computed).  The same
    [var] and circuit shortcuts as {!confidence} apply when
    {!Lineage.Circuit.enabled}; the circuit displaces only the Shannon
    rung (whose value it reproduces bitwise) and reports
    [on_tier Circuit]. *)

val estimate_tiered :
  ?obs:Obs.t ->
  ?pool:Exec.Pool.t ->
  ?on_tier:(Lineage.Approx.tier -> unit) ->
  t ->
  db:Relational.Database.t ->
  Lineage.Formula.t ->
  Lineage.Approx.estimate * string
(** {!estimate} plus the tier label ( ["var"], ["cached"], ["circuit"],
    or the ladder rung name) that produced the value. *)

val warm :
  ?obs:Obs.t ->
  t ->
  db:Relational.Database.t ->
  (Lineage.Formula.t * value) list ->
  unit
(** Install precomputed values (e.g. computed in parallel over an
    {!Exec.Pool} by the batch stage) for formulas not already cached.
    Each install counts as a recompute; the values must have been
    computed against [db]'s current confidence vector. *)

val sync : ?obs:Obs.t -> t -> db:Relational.Database.t -> unit
(** Catch up with [db]'s confidence epoch vector now (also done
    implicitly by every lookup): per shard, targeted invalidation when
    that shard's change log covers the gap, a per-shard flush otherwise;
    wholesale only across a shard-layout change. *)

val synced_epochs : t -> int array
(** The per-shard confidence epochs the cache last synced to (a copy);
    [[||]] before the first {!sync}. *)

val shard_sizes : t -> shards:int -> int array
(** Per-shard count of indexed base tuples (tuples with live cached
    classes mentioning them), bucketed by {!Relational.Database.shard_of}
    under a [shards]-way layout — the [pcqe_shard_conf_cache_size]
    gauge.  An upper bound per shard: a tuple's index entry lingers
    until the tuple itself is dirtied. *)

val length : t -> int

val mem_exact : t -> Lineage.Formula.t -> bool
(** Whether the exact table holds the formula's class.  Does {e not}
    {!sync} — callers deciding what to prewarm must sync first so the
    answer reflects the live confidence epoch. *)

val mem_estimate : t -> Lineage.Formula.t -> bool
(** {!mem_exact} for the degradation-ladder table. *)

val reused : t -> int
(** Total cache hits (classes whose confidence was reused). *)

val recomputed : t -> int
(** Total misses + warm installs (classes actually computed). *)

val invalidated : t -> int
(** Total entries dropped by targeted invalidation. *)

val clear : t -> unit
