module Db = Relational.Database

type t = {
  key : string;
  plan : Relational.Algebra.t;
  base_relations : string list;
  safe : bool;
      (* Safe_plan verdict, decided once at compile time: the plan is
         static, so safety is a property of the prepared entry *)
  structural_epoch : int;
  structural_vector : int array;
      (* composite per-shard stamp: validity is vector equality, so a
         re-partition (same contents, new shard layout) retires the
         entry even though the scalar epoch never moved *)
  views_epoch : int;
  mutable evaluated : (int array * Relational.Eval.annotated) option;
  mutable confs : (int array * float array) option;
      (* safe-plan confidences, keyed by the confidence vector they were
         computed under (row memoization above is structural-vector-keyed;
         confidences go stale faster) *)
}

let ( let* ) = Result.bind
let key_of_query = Query.to_string
let key t = t.key
let plan t = t.plan
let base_relations t = t.base_relations
let safe t = t.safe
let structural_epoch t = t.structural_epoch
let structural_vector t = t.structural_vector
let views_epoch t = t.views_epoch

let compile ?obs ~db ~views query =
  let* plan = Obs.span obs "parse/plan" (fun () -> Query.to_plan query) in
  let plan =
    Obs.span obs "view-expand" (fun () -> Relational.Views.expand views plan)
  in
  let* plan =
    Obs.span obs "rewrite" (fun () -> Relational.Rewrite.optimize db plan)
  in
  Ok
    {
      key = key_of_query query;
      plan;
      base_relations = Relational.Algebra.base_relations plan;
      safe = Relational.Safe_plan.analyze plan;
      structural_epoch = Db.structural_epoch db;
      structural_vector = Db.structural_vector db;
      views_epoch = Relational.Views.epoch views;
      evaluated = None;
      confs = None;
    }

let valid t ~db ~views =
  t.structural_vector = Db.structural_vector db
  && t.views_epoch = Relational.Views.epoch views

let eval ?obs ?pool t ~db =
  match t.evaluated with
  | Some (vec, res) when vec = Db.structural_vector db ->
    Obs.incr obs "serving.eval_reused";
    Ok res
  | _ ->
    (* sharded scatter/gather over the hybrid evaluator: vectorizable
       fragments run columnar per shard, the rest falls back to the row
       engine (bit-identical results on every path) *)
    let* res = Relational.Sharded.run ?pool db t.plan in
    t.evaluated <- Some (Db.structural_vector db, res);
    Ok res

let row_confs db (res : Relational.Eval.annotated) =
  let p = Db.confidence_fn db in
  Array.of_list
    (List.map
       (fun (r : Relational.Eval.row) ->
         Lineage.Prob.confidence p r.Relational.Eval.lineage)
       res.Relational.Eval.rows)

(* [eval] plus safe-plan confidences.  For a safe plan (with the circuit
   fast path on), the cold evaluation computes confidences during batch
   evaluation ([Sharded.run_conf]); memo hits whose confidence vector
   moved refresh them with one linear read-once pass over the memoized
   rows. [None] confidences mean the caller runs the ladder as before. *)
let eval_conf ?obs ?pool t ~db =
  if not (t.safe && Lineage.Circuit.enabled ()) then
    let* res = eval ?obs ?pool t ~db in
    Ok (res, None)
  else
    let sv = Db.structural_vector db and cv = Db.confidence_vector db in
    match t.evaluated with
    | Some (vec, res) when vec = sv -> (
      Obs.incr obs "serving.eval_reused";
      match t.confs with
      | Some (cvec, confs) when cvec = cv -> Ok (res, Some confs)
      | _ ->
        let confs = row_confs db res in
        t.confs <- Some (cv, confs);
        Ok (res, Some confs))
    | _ -> (
      let* res, confs = Relational.Sharded.run_conf ?pool db t.plan in
      t.evaluated <- Some (sv, res);
      match confs with
      | Some confs ->
        t.confs <- Some (cv, confs);
        Ok (res, Some confs)
      | None ->
        (* [run_conf] re-checks the kill switch; if it flipped between
           our check and the run, recompute inline for consistency *)
        let confs = row_confs db res in
        t.confs <- Some (cv, confs);
        Ok (res, Some confs))
