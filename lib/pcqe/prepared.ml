module Db = Relational.Database

type t = {
  key : string;
  plan : Relational.Algebra.t;
  base_relations : string list;
  structural_epoch : int;
  views_epoch : int;
  mutable evaluated : (int * Relational.Eval.annotated) option;
}

let ( let* ) = Result.bind

let key_of_query = Query.to_string

let key t = t.key
let plan t = t.plan
let base_relations t = t.base_relations
let structural_epoch t = t.structural_epoch
let views_epoch t = t.views_epoch

let compile ?obs ~db ~views query =
  let* plan = Obs.span obs "parse/plan" (fun () -> Query.to_plan query) in
  let plan =
    Obs.span obs "view-expand" (fun () -> Relational.Views.expand views plan)
  in
  let* plan =
    Obs.span obs "rewrite" (fun () -> Relational.Rewrite.optimize db plan)
  in
  Ok
    {
      key = key_of_query query;
      plan;
      base_relations = Relational.Algebra.base_relations plan;
      structural_epoch = Db.structural_epoch db;
      views_epoch = Relational.Views.epoch views;
      evaluated = None;
    }

let valid t ~db ~views =
  t.structural_epoch = Db.structural_epoch db
  && t.views_epoch = Relational.Views.epoch views

let eval ?obs t ~db =
  match t.evaluated with
  | Some (epoch, res) when epoch = Db.structural_epoch db ->
    Obs.incr obs "serving.eval_reused";
    Ok res
  | _ ->
    (* hybrid evaluator: vectorizable subtrees run columnar, the rest
       falls back to the row engine (bit-identical results either way) *)
    let* res = Relational.Col_eval.run db t.plan in
    t.evaluated <- Some (Db.structural_epoch db, res);
    Ok res
