(** Human-readable rendering of engine responses — what the CLI and the
    examples print. *)

val response_to_string : ?max_rows:int -> Engine.response -> string
(** Render a {!Engine.response}: the released rows as a table with
    confidence values, the applied policies and threshold, the withheld
    count, and (when present) the improvement proposal with its per-tuple
    increments and total cost.  [max_rows] truncates the table. *)

val proposal_to_string : Engine.proposal -> string

val profile_to_string : ?time:(float -> string) -> Obs.Profile.t -> string
(** Render a per-request profile ({!Engine.response}[.profile]): the
    annotated plan — one row per stage with elapsed time, allocated
    bytes and span attributes — followed by the counter deltas grouped
    into cache attribution ([prepared.*], [serving.*], [cache.*]),
    confidence ladder ([ladder.*]), engine, solver and resilience
    sections.  [time] formats elapsed values (default milliseconds). *)

val timed_to_string :
  ?response:Engine.response -> ?with_metrics:bool -> Obs.t -> string
(** EXPLAIN ANALYZE-style timed plan: the span tree recorded during
    {!Engine.answer} (per-stage elapsed time with rows in/out attributes),
    the response's release accounting, and — with [with_metrics] (default
    false) — the metrics dump.  Meaningful after answering with
    [ctx.obs = Some obs]. *)
