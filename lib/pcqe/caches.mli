(** The serving caches: one {!Plan_cache} + one {!Conf_cache}.

    A [Caches.t] plugs into {!Engine.context} ([caches] field) to turn
    the one-shot answer path into a warm serving pipeline; the engine's
    outputs are bit-identical with or without it (property-tested), the
    caches only remove repeated work.  The handle is mutable and safely
    shared across the immutable context copies the engine returns
    ({!Engine.accept_proposal}); it must only be used from one domain at
    a time (like {!Obs.Metrics}, single-writer). *)

type t

val create : ?plan_capacity:int -> ?conf_max_entries:int -> unit -> t
(** Defaults: 128 prepared plans, 65 536 cached confidence classes. *)

val plans : t -> Plan_cache.t
val conf : t -> Conf_cache.t

val stats : t -> (string * int) list
(** Entry counts plus cumulative hit/miss/evict/invalidation counters,
    in a stable order — the [\caches] REPL view. *)

val export_gauges : t -> Obs.t option -> unit
(** Publish every {!stats} entry as a [cache.<name>] gauge in the
    handle's metrics registry (no-op on [None]).  The serving session
    refreshes these after each answer so [--metrics-out] exports capture
    live cache occupancy and hit/miss totals. *)

val stats_to_string : t -> string

val clear : t -> unit
