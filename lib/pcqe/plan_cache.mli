(** Bounded LRU cache of {!Prepared} queries, keyed by query text.

    One cache serves every principal: the prepared front of the pipeline
    is principal-independent, so N users issuing the same SQL share one
    compile.  Entries whose epoch stamps no longer match the live
    database/view store are retired on lookup (a miss that recompiles in
    place); when the cache grows past its capacity the least-recently
    used entry is evicted.

    Lookups count [prepared.hit] / [prepared.miss] / [prepared.evict] on
    the optional [Obs.t], and mirror the totals in plain counters for
    cache-stats displays ([\caches], [pcqe batch]). *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 128 entries.
    @raise Invalid_argument when [capacity < 1]. *)

val find_or_compile :
  ?obs:Obs.t ->
  t ->
  db:Relational.Database.t ->
  views:Relational.Views.t ->
  Query.t ->
  (Prepared.t, string) result
(** The cached prepared query when present {e and} still valid for
    [(db, views)]; otherwise compiles, stores (evicting the LRU entry if
    over capacity) and returns the fresh one.  Compile errors are not
    cached. *)

val length : t -> int
val hits : t -> int
val misses : t -> int
val evictions : t -> int
val clear : t -> unit
