let table headers body =
  let rows = headers :: body in
  let ncols = List.length headers in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)))
    rows;
  let line =
    "+"
    ^ String.concat "+"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let render cells =
    "|"
    ^ String.concat "|"
        (List.mapi (fun i cell -> Printf.sprintf " %-*s " widths.(i) cell) cells)
    ^ "|"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line ^ "\n" ^ render headers ^ "\n" ^ line ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render r ^ "\n")) body;
  Buffer.add_string buf line;
  Buffer.contents buf

let proposal_to_string (p : Engine.proposal) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "Improvement proposal (%s, %.3fs, %s):\n  total cost: %.2f\n  would release %d result(s)\n"
       p.Engine.solver_name p.Engine.elapsed_s p.Engine.solver_detail
       p.Engine.cost p.Engine.projected_release);
  (match p.Engine.resolution with
  | Optimize.Solver.Complete -> ()
  | Optimize.Solver.Partial { reason } ->
    Buffer.add_string buf
      (Printf.sprintf
         "  DEGRADED: %s — best feasible plan found so far, possibly not \
          the cheapest\n"
         reason));
  List.iter
    (fun (tid, target) ->
      Buffer.add_string buf
        (Printf.sprintf "  raise %s to confidence %.2f\n"
           (Lineage.Tid.to_string tid) target))
    p.Engine.increments;
  Buffer.contents buf

let response_to_string ?max_rows (r : Engine.response) =
  let buf = Buffer.create 512 in
  (match r.Engine.threshold with
  | Some beta ->
    Buffer.add_string buf
      (Printf.sprintf "Policy threshold in force: confidence > %g\n" beta);
    List.iter
      (fun p ->
        Buffer.add_string buf
          (Printf.sprintf "  applied policy %s\n" (Rbac.Policy.to_string p)))
      r.Engine.applied_policies
  | None ->
    Buffer.add_string buf "No confidence policy applies to this request.\n");
  let all_rows = r.Engine.released in
  let shown, elided =
    match max_rows with
    | Some n when List.length all_rows > n ->
      (List.filteri (fun i _ -> i < n) all_rows, List.length all_rows - n)
    | _ -> (all_rows, 0)
  in
  if shown = [] then Buffer.add_string buf "Released results: none\n"
  else begin
    let headers =
      Relational.Schema.column_names r.Engine.schema @ [ "confidence" ]
    in
    let body =
      List.map
        (fun (row : Engine.released) ->
          List.map Relational.Value.to_string
            (Array.to_list (Relational.Tuple.values row.Engine.tuple))
          @ [ Printf.sprintf "%.4f" row.Engine.confidence ])
        shown
    in
    Buffer.add_string buf (table headers body);
    Buffer.add_char buf '\n';
    if elided > 0 then
      Buffer.add_string buf (Printf.sprintf "... %d more row(s)\n" elided)
  end;
  if r.Engine.withheld > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "%d result(s) withheld by the confidence policy (%d released of the \
          %d the request requires).\n"
         r.Engine.withheld
         (List.length r.Engine.released)
         r.Engine.requested);
  if r.Engine.ambiguous > 0 then
    Buffer.add_string buf
      (Printf.sprintf
         "%d of the withheld result(s) had a confidence interval straddling \
          the threshold (withheld fail-closed).\n"
         r.Engine.ambiguous);
  (match r.Engine.proposal with
  | Some p -> Buffer.add_string buf (proposal_to_string p)
  | None ->
    if r.Engine.infeasible then
      Buffer.add_string buf
        "No feasible confidence-improvement strategy exists (caps too low).\n"
    else (
      match r.Engine.degraded with
      | Some reason ->
        Buffer.add_string buf
          (Printf.sprintf
             "DEGRADED: strategy finding stopped early (%s) with no feasible \
              plan yet — retry with a larger budget.\n"
             reason)
      | None -> ()));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Per-request profile: the annotated plan (per-stage elapsed time and
   allocation) followed by the counter deltas grouped by what they
   attribute — cache behaviour, ladder rungs, engine accounting, solver
   work — so a reader sees where the request's time, memory and cache
   traffic went without knowing the counter namespace *)

let profile_to_string ?time (p : Obs.Profile.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Obs.Profile.render ?time { p with Obs.Profile.counters = [] });
  let remaining = ref p.Obs.Profile.counters in
  let section title prefixes =
    let mine, rest =
      List.partition
        (fun (name, _) ->
          List.exists (fun prefix -> String.starts_with ~prefix name) prefixes)
        !remaining
    in
    remaining := rest;
    if mine <> [] then begin
      Buffer.add_string buf (title ^ ":\n");
      List.iter
        (fun (name, d) ->
          Buffer.add_string buf (Printf.sprintf "  %-38s %+d\n" name d))
        mine
    end
  in
  section "cache attribution" [ "prepared."; "serving."; "cache." ];
  section "confidence ladder" [ "ladder." ];
  section "engine" [ "engine." ];
  section "solver" [ "dnc."; "greedy."; "heuristic."; "annealing." ];
  section "resilience" [ "resilience." ];
  section "other counters" [ "" ];
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* EXPLAIN ANALYZE-style timed plan: the engine's span tree (per-stage
   elapsed time, rows in/out as span attributes) plus the release
   accounting of the response it timed *)

let timed_to_string ?response ?(with_metrics = false) (obs : Obs.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "Timed plan (per-stage elapsed, rows in/out):\n";
  Buffer.add_string buf (Obs.Trace.render obs.Obs.trace);
  (match response with
  | None -> ()
  | Some (r : Engine.response) ->
    Buffer.add_string buf
      (Printf.sprintf "released=%d withheld=%d requested=%d%s\n"
         (List.length r.Engine.released)
         r.Engine.withheld r.Engine.requested
         (if r.Engine.ambiguous > 0 then
            Printf.sprintf " ambiguous=%d" r.Engine.ambiguous
          else "")));
  if with_metrics then begin
    let metrics = Obs.Metrics.render obs.Obs.metrics in
    if metrics <> "" then begin
      Buffer.add_string buf "Metrics:\n";
      Buffer.add_string buf metrics
    end
  end;
  Buffer.contents buf
