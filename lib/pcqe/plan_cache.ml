type t = {
  capacity : int;
  table : (string, Prepared.t) Hashtbl.t;
  mutable recency : string list; (* most-recently-used first *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

let ( let* ) = Result.bind

let create ?(capacity = 128) () =
  if capacity < 1 then
    invalid_arg (Printf.sprintf "Plan_cache.create: capacity %d < 1" capacity);
  {
    capacity;
    table = Hashtbl.create (min capacity 64);
    recency = [];
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses
let evictions t = t.evictions

let touch t key =
  t.recency <- key :: List.filter (fun k -> not (String.equal k key)) t.recency

let drop t key =
  Hashtbl.remove t.table key;
  t.recency <- List.filter (fun k -> not (String.equal k key)) t.recency

let evict_lru ?obs t =
  match List.rev t.recency with
  | [] -> ()
  | lru :: _ ->
    drop t lru;
    t.evictions <- t.evictions + 1;
    Obs.incr obs "prepared.evict"

let find_or_compile ?obs t ~db ~views query =
  let key = Prepared.key_of_query query in
  match Hashtbl.find_opt t.table key with
  | Some p when Prepared.valid p ~db ~views ->
    t.hits <- t.hits + 1;
    Obs.incr obs "prepared.hit";
    touch t key;
    Ok p
  | stale ->
    (* a stale entry (epoch moved on) is retired silently: the recompile
       below replaces it, and the request is accounted a miss *)
    (match stale with Some _ -> drop t key | None -> ());
    t.misses <- t.misses + 1;
    Obs.incr obs "prepared.miss";
    let* p = Prepared.compile ?obs ~db ~views query in
    Hashtbl.replace t.table key p;
    touch t key;
    if Hashtbl.length t.table > t.capacity then evict_lru ?obs t;
    Ok p

let clear t =
  Hashtbl.reset t.table;
  t.recency <- []
