(** Audit trail for policy-compliant query evaluation.

    Compliance frameworks need evidence: who asked what, under which
    policy, what was withheld, what improvement was proposed and whether
    it was accepted.  This module records those events in an append-only
    log with monotonically increasing sequence numbers (no wall-clock
    timestamps — determinism keeps the trail reproducible and testable;
    callers that need real time can wrap entries).

    The log is a value: recording returns a new log, so it composes with
    the functional engine.  {!to_string} renders an evidence report;
    {!parse}/{!render} give a line-oriented persistence format. *)

type event =
  | Query of {
      user : string;
      purpose : string;
      sql : string;
      threshold : float option;
      released : int;
      withheld : int;
      proposal_cost : float option;
      degraded : string option;
          (** why strategy finding was cut short (deadline expiry), when
              it was — the compliance evidence that a proposal is
              best-so-far rather than the solver's natural answer *)
    }  (** one {!Engine.answer} call and its policy outcome *)
  | Improvement of {
      user : string;
      cost : float;
      increments : (Lineage.Tid.t * float) list;
    }  (** an accepted proposal (data-quality improvement) *)
  | Denied of { user : string; reason : string }
      (** an RBAC denial or validation failure *)

type entry = { seq : int; event : event }

type t

val empty : t
val entries : t -> entry list
(** Oldest first. *)

val length : t -> int

val record : t -> event -> t

val record_answer :
  t -> user:string -> purpose:string -> sql:string -> Engine.response -> t
(** Convenience: derive a [Query] event from a response. *)

val record_acceptance : t -> user:string -> Engine.proposal -> t

val record_denial : t -> user:string -> reason:string -> t

val events_for_user : t -> string -> entry list

val to_string : t -> string
(** Human-readable evidence report. *)

val render : t -> string
(** Machine-readable, one entry per line; inverse of {!parse}. *)

val parse : string -> (t, string) result
