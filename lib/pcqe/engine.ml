module Tid = Lineage.Tid
module Db = Relational.Database

type context = {
  db : Db.t;
  rbac : Rbac.Core_rbac.t;
  policies : Rbac.Policy.store;
  views : Relational.Views.t;
  cost_of : Tid.t -> Cost.Cost_model.t;
  cap_of : Tid.t -> float;
  solver : Optimize.Solver.algorithm;
  delta : float;
  jobs : int;
  obs : Obs.t option;
}

let make_context ?(solver = Optimize.Solver.divide_conquer) ?(delta = 0.1)
    ?jobs ?cost_of ?cap_of ?(views = Relational.Views.empty) ?obs ~db ~rbac
    ~policies () =
  let default_cost = Cost.Cost_model.linear ~rate:100.0 in
  {
    db;
    rbac;
    policies;
    views;
    cost_of = Option.value cost_of ~default:(fun _ -> default_cost);
    cap_of = Option.value cap_of ~default:(fun _ -> 1.0);
    solver;
    delta;
    jobs = Exec.resolve_jobs ?jobs ();
    obs;
  }

type request = { query : Query.t; user : string; purpose : string; perc : float }

type released = {
  tuple : Relational.Tuple.t;
  lineage : Lineage.Formula.t;
  confidence : float;
}

type proposal = {
  increments : (Tid.t * float) list;
  cost : float;
  projected_release : int;
  solver_name : string;
  solver_stats : Optimize.Solver.stats;
  solver_detail : string;
  elapsed_s : float;
}

type response = {
  schema : Relational.Schema.t;
  released : released list;
  withheld : int;
  requested : int;
  threshold : float option;
  applied_policies : Rbac.Policy.t list;
  proposal : proposal option;
  infeasible : bool;
}

let ( let* ) = Result.bind

let check_rbac_with ~who ~check plan =
  let denied =
    List.filter
      (fun rel -> not (check { Rbac.Core_rbac.action = "select"; resource = rel }))
      (Relational.Algebra.base_relations plan)
  in
  if denied = [] then Ok ()
  else
    Error
      (Printf.sprintf "access denied: %s lacks select on %s" who
         (String.concat ", " denied))

let check_rbac ctx ~user plan =
  if not (List.mem user (Rbac.Core_rbac.users ctx.rbac)) then
    Error (Printf.sprintf "unknown user %S" user)
  else
    check_rbac_with
      ~who:(Printf.sprintf "user %S" user)
      ~check:(fun p -> Rbac.Core_rbac.check ctx.rbac ~user p)
      plan

let answer_common ctx ~check_access ~roles ~query ~purpose ~perc =
  let obs = ctx.obs in
  Obs.span obs "answer" (fun () ->
      Obs.incr obs "engine.queries";
      let* () =
        if perc >= 0.0 && perc <= 1.0 then Ok ()
        else Error (Printf.sprintf "perc %g outside [0,1]" perc)
      in
      let* plan = Obs.span obs "parse/plan" (fun () -> Query.to_plan query) in
      let plan =
        Obs.span obs "view-expand" (fun () ->
            Relational.Views.expand ctx.views plan)
      in
      let* plan =
        Obs.span obs "rewrite" (fun () -> Relational.Rewrite.optimize ctx.db plan)
      in
      (* (1) traditional access control over the base relations *)
      let* () = Obs.span obs "rbac" (fun () -> check_access plan) in
      (* (2) lineage-carrying query evaluation + confidence computation *)
      let* res =
        Obs.span obs "eval" (fun () ->
            let r = Relational.Eval.run ctx.db plan in
            (match r with
            | Ok res ->
              let rows = List.length res.Relational.Eval.rows in
              Obs.add_attr obs "rows" (string_of_int rows);
              Obs.observe obs "engine.rows" (float_of_int rows)
            | Error _ -> ());
            r)
      in
      let with_conf =
        Obs.span obs "confidence" (fun () ->
            Relational.Eval.with_confidence ctx.db res)
      in
      (* (3) policy evaluation: select the policy by role and purpose *)
      let applied_policies =
        Rbac.Policy.applicable ctx.policies ~roles ~purpose
      in
      let threshold =
        Rbac.Policy.effective_threshold ctx.policies ~roles ~purpose
      in
      let released, withheld =
        Obs.span obs "policy-filter" (fun () ->
            let released, withheld =
              match threshold with
              | None ->
                ( List.map
                    (fun (r, c) ->
                      {
                        tuple = r.Relational.Eval.tuple;
                        lineage = r.Relational.Eval.lineage;
                        confidence = c;
                      })
                    with_conf,
                  0 )
              | Some beta ->
                let rel, wh =
                  List.partition (fun (_, c) -> c > beta) with_conf
                in
                ( List.map
                    (fun (r, c) ->
                      {
                        tuple = r.Relational.Eval.tuple;
                        lineage = r.Relational.Eval.lineage;
                        confidence = c;
                      })
                    rel,
                  List.length wh )
            in
            Obs.add_attr obs "released" (string_of_int (List.length released));
            Obs.add_attr obs "withheld" (string_of_int withheld);
            Obs.incr obs ~by:(List.length released) "engine.released";
            Obs.incr obs ~by:withheld "engine.withheld";
            (released, withheld))
      in
      (* (4) strategy finding when fewer than perc of the results pass;
         [need] is the request's floor on released results and is reported
         back as [requested] so callers never recompute the ceil *)
      let n = List.length with_conf in
      let need = int_of_float (ceil (perc *. float_of_int n)) in
      let* proposal, infeasible =
        match threshold with
        | Some beta when List.length released < need && withheld > 0 ->
          Obs.span obs "strategy-finding" (fun () ->
              let* problem, _failing =
                Optimize.Problem.of_query_results ~delta:ctx.delta ~theta:perc
                  ~beta ~cost_of:ctx.cost_of ~cap_of:ctx.cap_of ctx.db res
              in
              let out =
                Optimize.Solver.solve ~algorithm:ctx.solver ?obs
                  ~jobs:ctx.jobs problem
              in
              match out.Optimize.Solver.solution with
              | Some increments ->
                (* project the release count by re-evaluating *every* result
                   under the raised confidences: with non-monotone lineage
                   (outer joins, NOT IN) an increment can push a previously-
                   passing row back below the threshold, so counting
                   satisfied new rows alone would overestimate *)
                let raised = Tid.Table.create 16 in
                List.iter
                  (fun (tid, p) -> Tid.Table.replace raised tid p)
                  increments;
                let conf_after tid =
                  let current = Db.confidence ctx.db tid in
                  match Tid.Table.find_opt raised tid with
                  | Some target -> Float.max current target
                  | None -> current
                in
                let projected_release =
                  List.fold_left
                    (fun acc row ->
                      if
                        Lineage.Prob.confidence conf_after
                          row.Relational.Eval.lineage
                        > beta
                      then acc + 1
                      else acc)
                    0 res.Relational.Eval.rows
                in
                Obs.add_attr obs "solver"
                  (Optimize.Solver.algorithm_name ctx.solver);
                Obs.incr obs "engine.proposals";
                Ok
                  ( Some
                      {
                        increments;
                        cost = out.Optimize.Solver.cost;
                        projected_release;
                        solver_name = Optimize.Solver.algorithm_name ctx.solver;
                        solver_stats = out.Optimize.Solver.stats;
                        solver_detail = out.Optimize.Solver.detail;
                        elapsed_s = out.Optimize.Solver.elapsed_s;
                      },
                    false )
              | None ->
                Obs.incr obs "engine.infeasible";
                Ok (None, true))
        | _ -> Ok (None, false)
      in
      Obs.span obs "projection" (fun () ->
          Ok
            {
              schema = res.Relational.Eval.schema;
              released;
              withheld;
              requested = need;
              threshold;
              applied_policies;
              proposal;
              infeasible;
            }))

let answer ctx request =
  let check_access plan = check_rbac ctx ~user:request.user plan in
  let roles = Rbac.Core_rbac.authorized_roles ctx.rbac request.user in
  answer_common ctx ~check_access ~roles ~query:request.query
    ~purpose:request.purpose ~perc:request.perc

let answer_session ctx session query ~purpose ~perc =
  let check_access plan =
    check_rbac_with
      ~who:
        (Printf.sprintf "session of %S" (Rbac.Core_rbac.session_user session))
      ~check:(fun p -> Rbac.Core_rbac.check_session ctx.rbac session p)
      plan
  in
  (* session roles plus their juniors select the policies *)
  let roles =
    List.concat_map
      (fun r -> r :: Rbac.Core_rbac.junior_roles ctx.rbac r)
      (Rbac.Core_rbac.session_roles session)
  in
  answer_common ctx ~check_access ~roles ~query ~purpose ~perc

let accept_proposal ctx proposal =
  { ctx with db = Db.apply_increments ctx.db proposal.increments }
