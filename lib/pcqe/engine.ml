module Tid = Lineage.Tid
module Db = Relational.Database

type context = {
  db : Db.t;
  rbac : Rbac.Core_rbac.t;
  policies : Rbac.Policy.store;
  views : Relational.Views.t;
  cost_of : Tid.t -> Cost.Cost_model.t;
  cap_of : Tid.t -> float;
  solver : Optimize.Solver.algorithm;
  delta : float;
  jobs : int;
  deadline : Resilience.Deadline.spec;
  mc_fallback : bool;
  obs : Obs.t option;
  caches : Caches.t option;
  profile : bool;
}

let make_context ?(solver = Optimize.Solver.divide_conquer) ?(delta = 0.1)
    ?jobs ?(deadline = Resilience.Deadline.No_deadline) ?(mc_fallback = false)
    ?cost_of ?cap_of ?(views = Relational.Views.empty) ?obs ?caches
    ?(profile = false) ~db ~rbac ~policies () =
  let default_cost = Cost.Cost_model.linear ~rate:100.0 in
  {
    db;
    rbac;
    policies;
    views;
    cost_of = Option.value cost_of ~default:(fun _ -> default_cost);
    cap_of = Option.value cap_of ~default:(fun _ -> 1.0);
    solver;
    delta;
    jobs = Exec.resolve_jobs ?jobs ();
    deadline;
    mc_fallback;
    obs;
    caches;
    profile;
  }

type request = { query : Query.t; user : string; purpose : string; perc : float }

type released = {
  tuple : Relational.Tuple.t;
  lineage : Lineage.Formula.t;
  confidence : float;
  conf_tier : string;
}

type proposal = {
  increments : (Tid.t * float) list;
  cost : float;
  projected_release : int;
  solver_name : string;
  solver_stats : Optimize.Solver.stats;
  solver_detail : string;
  elapsed_s : float;
  resolution : Optimize.Solver.resolution;
}

type response = {
  schema : Relational.Schema.t;
  released : released list;
  withheld : int;
  ambiguous : int;
  requested : int;
  threshold : float option;
  applied_policies : Rbac.Policy.t list;
  proposal : proposal option;
  infeasible : bool;
  degraded : string option;
  profile : Obs.Profile.t option;
}

(* point value used for display; release decisions never use it *)
let point_estimate = function
  | Lineage.Approx.Exact c -> c
  | Lineage.Approx.Interval { estimate; _ } -> estimate
  | Lineage.Approx.Failed _ -> Float.nan

let ( let* ) = Result.bind

let check_rbac_with ~who ~check plan =
  let denied =
    List.filter
      (fun rel -> not (check { Rbac.Core_rbac.action = "select"; resource = rel }))
      (Relational.Algebra.base_relations plan)
  in
  if denied = [] then Ok ()
  else
    Error
      (Printf.sprintf "access denied: %s lacks select on %s" who
         (String.concat ", " denied))

let check_rbac ctx ~user plan =
  if not (List.mem user (Rbac.Core_rbac.users ctx.rbac)) then
    Error (Printf.sprintf "unknown user %S" user)
  else
    check_rbac_with
      ~who:(Printf.sprintf "user %S" user)
      ~check:(fun p -> Rbac.Core_rbac.check ctx.rbac ~user p)
      plan

let answer_common ctx ~check_access ~roles ~query ~purpose ~perc =
  let obs = ctx.obs in
  Obs.span obs "answer" (fun () ->
      Obs.incr obs "engine.queries";
      (* one token per answer: a wall budget covers everything from here,
         so a slow evaluation leaves less time for strategy finding *)
      let deadline = Resilience.Deadline.start ctx.deadline in
      let* () =
        if perc >= 0.0 && perc <= 1.0 then Ok ()
        else Error (Printf.sprintf "perc %g outside [0,1]" perc)
      in
      (* prepare stage: parse → view expansion → rewrite, compiled once
         per ⟨query text, structural epoch, views epoch⟩.  With serving
         caches the prepared plan comes from the LRU plan cache; without
         them this is exactly the old inline front end (Prepared.compile
         emits the same parse/plan, view-expand and rewrite spans). *)
      let* prepared =
        match ctx.caches with
        | Some caches ->
          Plan_cache.find_or_compile ?obs (Caches.plans caches) ~db:ctx.db
            ~views:ctx.views query
        | None -> Prepared.compile ?obs ~db:ctx.db ~views:ctx.views query
      in
      let plan = Prepared.plan prepared in
      (* (1) traditional access control over the base relations *)
      let* () = Obs.span obs "rbac" (fun () -> check_access plan) in
      (* (2) lineage-carrying query evaluation + confidence computation *)
      let* res, safe_confs =
        Obs.span obs "eval" (fun () ->
            let r = Prepared.eval_conf ?obs prepared ~db:ctx.db in
            (match r with
            | Ok (res, _) ->
              let rows = List.length res.Relational.Eval.rows in
              Obs.add_attr obs "rows" (string_of_int rows);
              Obs.observe obs "engine.rows" (float_of_int rows)
            | Error _ -> ());
            r)
      in
      let with_conf =
        Obs.span obs "confidence" (fun () ->
            (* rung accounting: one [ladder.<tier>] tick per class actually
               run through the degradation ladder (cache hits don't
               re-count the rung that originally answered) *)
            let on_tier tier =
              Obs.incr obs ("ladder." ^ Lineage.Approx.tier_name tier)
            in
            match safe_confs with
            | Some confs ->
              (* safe-plan fast path: confidences came out of batch
                 evaluation; the ladder and the class cache are idle for
                 this answer.  Values are bitwise the ladder's. *)
              Obs.incr obs "engine.safe_plan";
              Obs.incr obs ~by:(Array.length confs) "engine.safe_plan_rows";
              Obs.add_attr obs "conf" "safe_plan";
              List.mapi
                (fun i r -> (r, Lineage.Approx.Exact confs.(i), "safe_plan"))
                res.Relational.Eval.rows
            | None -> (
              match ctx.caches with
              | Some caches ->
                (* per-epoch confidence cache: one computation per distinct
                   lineage class, bit-identical to the cold paths below *)
                let cache = Caches.conf caches in
                if ctx.mc_fallback then
                  List.map
                    (fun r ->
                      let est, tier =
                        Conf_cache.estimate_tiered ?obs ~on_tier cache
                          ~db:ctx.db r.Relational.Eval.lineage
                      in
                      (r, est, tier))
                    res.Relational.Eval.rows
                else
                  List.map
                    (fun r ->
                      let c, tier =
                        Conf_cache.confidence_tiered ?obs cache ~db:ctx.db
                          r.Relational.Eval.lineage
                      in
                      (r, Lineage.Approx.Exact c, tier))
                    res.Relational.Eval.rows
              | None ->
                if ctx.mc_fallback then
                  (* degradation ladder: exact tiers when cheap, Monte-Carlo
                     intervals when the lineage is too entangled *)
                  let p = Db.confidence ctx.db in
                  List.map
                    (fun r ->
                      let name = ref "" in
                      let est =
                        Lineage.Approx.confidence
                          ~on_tier:(fun tier ->
                            name := Lineage.Approx.tier_name tier;
                            on_tier tier)
                          p r.Relational.Eval.lineage
                      in
                      (r, est, !name))
                    res.Relational.Eval.rows
                else
                  List.map
                    (fun (r, c) ->
                      let tier =
                        if
                          Lineage.Formula.is_read_once r.Relational.Eval.lineage
                        then "read_once"
                        else "shannon"
                      in
                      (r, Lineage.Approx.Exact c, tier))
                    (Relational.Eval.with_confidence ctx.db res)))
      in
      (* (3) policy evaluation: select the policy by role and purpose *)
      let applied_policies =
        Rbac.Policy.applicable ctx.policies ~roles ~purpose
      in
      let threshold =
        Rbac.Policy.effective_threshold ctx.policies ~roles ~purpose
      in
      let released, withheld, ambiguous =
        Obs.span obs "policy-filter" (fun () ->
            let mk r est tier =
              {
                tuple = r.Relational.Eval.tuple;
                lineage = r.Relational.Eval.lineage;
                confidence = point_estimate est;
                conf_tier = tier;
              }
            in
            let released, withheld, ambiguous =
              match threshold with
              | None ->
                (List.map (fun (r, est, tier) -> mk r est tier) with_conf, 0, 0)
              | Some beta ->
                (* fail-closed: release only when the estimate proves the
                   confidence strictly above beta; an interval straddling
                   beta (or a failed estimate) withholds the tuple *)
                let rel, wh, amb, failed =
                  List.fold_left
                    (fun (rel, wh, amb, failed) (r, est, tier) ->
                      match Lineage.Approx.releasable ~beta est with
                      | `Release -> (mk r est tier :: rel, wh, amb, failed)
                      | `Ambiguous -> (rel, wh + 1, amb + 1, failed)
                      | `Withhold ->
                        ( rel,
                          wh + 1,
                          amb,
                          match est with
                          | Lineage.Approx.Failed _ -> failed + 1
                          | _ -> failed ))
                    ([], 0, 0, 0) with_conf
                in
                if failed > 0 then
                  Obs.incr obs ~by:failed "resilience.confidence_failures";
                (List.rev rel, wh, amb)
            in
            Obs.add_attr obs "released" (string_of_int (List.length released));
            Obs.add_attr obs "withheld" (string_of_int withheld);
            Obs.incr obs ~by:(List.length released) "engine.released";
            Obs.incr obs ~by:withheld "engine.withheld";
            if ambiguous > 0 then begin
              Obs.add_attr obs "ambiguous" (string_of_int ambiguous);
              Obs.incr obs ~by:ambiguous "resilience.withheld_ambiguous"
            end;
            (released, withheld, ambiguous))
      in
      (* (4) strategy finding when fewer than perc of the results pass;
         [need] is the request's floor on released results and is reported
         back as [requested] so callers never recompute the ceil *)
      let n = List.length with_conf in
      let need = int_of_float (ceil (perc *. float_of_int n)) in
      let* proposal, infeasible, degraded =
        match threshold with
        | Some beta when List.length released < need && withheld > 0 ->
          Obs.span obs "strategy-finding" (fun () ->
              (* problem construction re-derives every row's current
                 confidence; with serving caches it reuses the classes the
                 policy filter just computed (or stored) instead *)
              let conf_of =
                Option.map
                  (fun caches f ->
                    Conf_cache.confidence ?obs (Caches.conf caches) ~db:ctx.db
                      f)
                  ctx.caches
              in
              let* problem, _failing =
                Optimize.Problem.of_query_results ?conf_of ~delta:ctx.delta
                  ~theta:perc ~beta ~cost_of:ctx.cost_of ~cap_of:ctx.cap_of
                  ctx.db res
              in
              let out =
                Optimize.Solver.solve ~algorithm:ctx.solver ?obs
                  ~jobs:ctx.jobs ~deadline problem
              in
              let degraded =
                match out.Optimize.Solver.resolution with
                | Optimize.Solver.Complete -> None
                | Optimize.Solver.Partial { reason } ->
                  Obs.add_attr obs "degraded" reason;
                  Obs.incr obs "resilience.degraded_answers";
                  Some reason
              in
              match out.Optimize.Solver.solution with
              | Some increments ->
                (* project the release count by re-evaluating *every* result
                   under the raised confidences: with non-monotone lineage
                   (outer joins, NOT IN) an increment can push a previously-
                   passing row back below the threshold, so counting
                   satisfied new rows alone would overestimate *)
                let raised = Tid.Table.create 16 in
                List.iter
                  (fun (tid, p) -> Tid.Table.replace raised tid p)
                  increments;
                let conf_after tid =
                  let current = Db.confidence ctx.db tid in
                  match Tid.Table.find_opt raised tid with
                  | Some target -> Float.max current target
                  | None -> current
                in
                let projected_release =
                  List.fold_left
                    (fun acc row ->
                      if
                        Lineage.Prob.confidence conf_after
                          row.Relational.Eval.lineage
                        > beta
                      then acc + 1
                      else acc)
                    0 res.Relational.Eval.rows
                in
                Obs.add_attr obs "solver"
                  (Optimize.Solver.algorithm_name ctx.solver);
                Obs.incr obs "engine.proposals";
                Ok
                  ( Some
                      {
                        increments;
                        cost = out.Optimize.Solver.cost;
                        projected_release;
                        solver_name = Optimize.Solver.algorithm_name ctx.solver;
                        solver_stats = out.Optimize.Solver.stats;
                        solver_detail = out.Optimize.Solver.detail;
                        elapsed_s = out.Optimize.Solver.elapsed_s;
                        resolution = out.Optimize.Solver.resolution;
                      },
                    false,
                    degraded )
              | None -> (
                (* no feasible best-so-far: infeasible only when the solver
                   ran to completion — a deadline cut proves nothing *)
                match degraded with
                | None ->
                  Obs.incr obs "engine.infeasible";
                  Ok (None, true, None)
                | Some _ -> Ok (None, false, degraded)))
        | _ -> Ok (None, false, None)
      in
      Obs.span obs "projection" (fun () ->
          Ok
            {
              schema = res.Relational.Eval.schema;
              released;
              withheld;
              ambiguous;
              requested = need;
              threshold;
              applied_policies;
              proposal;
              infeasible;
              degraded;
              profile = None;
            }))

(* Profiling wrapper: run the answer with observability guaranteed on
   (a private deterministic handle when the context has none), then build
   the profile from the root span this answer recorded plus the counter
   deltas over the run.  Strictly observe-only: the answer path is the
   same code, and span/counter recording never feeds back into it — the
   no-profile response is bit-identical (property-tested). *)
let profiled (ctx : context) run =
  if not ctx.profile then run ctx
  else begin
    let obs = match ctx.obs with Some o -> o | None -> Obs.deterministic () in
    let before = Obs.Profile.snapshot obs.Obs.metrics in
    (* roots recorded before this answer (e.g. earlier requests on a
       shared handle) are not ours: remember where the forest ends *)
    let mark = List.length (Obs.Trace.roots obs.Obs.trace) in
    match run { ctx with obs = Some obs } with
    | Error _ as e -> e
    | Ok resp ->
      let profile =
        match List.nth_opt (Obs.Trace.roots obs.Obs.trace) mark with
        | Some root ->
          Some (Obs.Profile.of_span ~before ~metrics:obs.Obs.metrics root)
        | None -> None
      in
      Ok { resp with profile }
  end

let answer ctx request =
  profiled ctx (fun ctx ->
      let check_access plan = check_rbac ctx ~user:request.user plan in
      let roles = Rbac.Core_rbac.authorized_roles ctx.rbac request.user in
      answer_common ctx ~check_access ~roles ~query:request.query
        ~purpose:request.purpose ~perc:request.perc)

let answer_session ctx session query ~purpose ~perc =
  profiled ctx (fun ctx ->
      let check_access plan =
        check_rbac_with
          ~who:
            (Printf.sprintf "session of %S"
               (Rbac.Core_rbac.session_user session))
          ~check:(fun p -> Rbac.Core_rbac.check_session ctx.rbac session p)
          plan
      in
      (* session roles plus their juniors select the policies *)
      let roles =
        List.concat_map
          (fun r -> r :: Rbac.Core_rbac.junior_roles ctx.rbac r)
          (Rbac.Core_rbac.session_roles session)
      in
      answer_common ctx ~check_access ~roles ~query ~purpose ~perc)

let accept_proposal ctx proposal =
  { ctx with db = Db.apply_increments ctx.db proposal.increments }

module Session = struct
  type session = { mutable ctx : context }
  type t = session

  let create ?plan_capacity ?conf_max_entries ctx =
    let caches =
      match ctx.caches with
      | Some caches -> caches
      | None -> Caches.create ?plan_capacity ?conf_max_entries ()
    in
    { ctx = { ctx with caches = Some caches } }

  let context t = t.ctx
  let set_context t ctx = t.ctx <- { ctx with caches = t.ctx.caches }

  let caches t =
    match t.ctx.caches with Some c -> c | None -> assert false (* by create *)

  let cache_stats t = Caches.stats (caches t)

  let prepare t query =
    Plan_cache.find_or_compile ?obs:t.ctx.obs
      (Caches.plans (caches t))
      ~db:t.ctx.db ~views:t.ctx.views query

  (* serving-grade gauges: cache occupancy/counters and the database
     epochs, refreshed after every served answer so a metrics export
     always reflects the live serving state *)
  let export_gauges t =
    let ctx = t.ctx in
    match ctx.obs with
    | None -> ()
    | Some _ as obs ->
      Caches.export_gauges (caches t) obs;
      Obs.set_gauge obs "db.structural_epoch"
        (float_of_int (Db.structural_epoch ctx.db));
      Obs.set_gauge obs "db.confidence_epoch"
        (float_of_int (Db.confidence_epoch ctx.db));
      (* per-shard serving state: confidence epoch, owned tuples, and
         conf-cache occupancy, labelled by shard number — one series per
         shard in the OpenMetrics export *)
      let shards = Db.shard_count ctx.db in
      let epochs = Db.confidence_vector ctx.db in
      let tuples = Db.shard_tuples ctx.db in
      let cache_sizes =
        Conf_cache.shard_sizes (Caches.conf (caches t)) ~shards
      in
      for i = 0 to shards - 1 do
        let labelled name = Printf.sprintf "shard.%s{shard=\"%d\"}" name i in
        Obs.set_gauge obs (labelled "epoch") (float_of_int epochs.(i));
        Obs.set_gauge obs (labelled "tuples") (float_of_int tuples.(i));
        Obs.set_gauge obs
          (labelled "conf_cache_size")
          (float_of_int cache_sizes.(i))
      done

  let answer t request =
    let obs = t.ctx.obs in
    let t0 = Obs.now obs in
    let r = answer t.ctx request in
    (* bounded sketch, not an exact series: sessions serve indefinitely
       and the latency histogram must stay fixed-memory *)
    Obs.observe_bounded obs "serving.answer_s" (Obs.now obs -. t0);
    export_gauges t;
    r

  let accept_proposal t proposal = t.ctx <- accept_proposal t.ctx proposal

  (* Prewarm then answer.  The prewarm compiles one prepared plan per
     distinct query text, evaluates it once, and computes every distinct
     uncached lineage class — in parallel over the {!Exec} pool when
     [ctx.jobs > 1].  Per-class confidence is a pure function of the
     formula and the confidence vector (Monte-Carlo seeds derive from the
     formula hash), so the parallel computation is deterministic and the
     single-threaded answers below read bit-identical values; the caches
     themselves are only written from this orchestrator thread. *)
  let batch t requests =
    let ctx = t.ctx in
    let obs = ctx.obs in
    let conf = Caches.conf (caches t) in
    let t0 = Obs.now obs in
    let responses =
      Obs.span obs "batch" (fun () ->
        (* distinct query texts in first-appearance order, with the
           requests that issued them *)
        let order = ref [] in
        let groups : (string, Query.t * request list ref) Hashtbl.t =
          Hashtbl.create 16
        in
        List.iter
          (fun req ->
            let key = Prepared.key_of_query req.query in
            match Hashtbl.find_opt groups key with
            | Some (_, reqs) -> reqs := req :: !reqs
            | None ->
              Hashtbl.add groups key (req.query, ref [ req ]);
              order := key :: !order)
          requests;
        Conf_cache.sync ?obs conf ~db:ctx.db;
        let fresh : unit Lineage.Formula.Table.t =
          Lineage.Formula.Table.create 64
        in
        List.iter
          (fun key ->
            let query, reqs = Hashtbl.find groups key in
            match prepare t query with
            | Error _ -> () (* the per-request answer reports the error *)
            | Ok p ->
              (* warm only what some batch member may access: evaluation
                 is RBAC-gated in the cold path, and the prewarm must not
                 do work no request could trigger *)
              let accessible =
                List.exists
                  (fun req ->
                    check_rbac ctx ~user:req.user (Prepared.plan p) = Ok ())
                  !reqs
              in
              if accessible then
                match Prepared.eval ?obs p ~db:ctx.db with
                | Error _ -> ()
                | Ok res ->
                  List.iter
                    (fun r ->
                      let f = r.Relational.Eval.lineage in
                      let cached =
                        if ctx.mc_fallback then Conf_cache.mem_estimate conf f
                        else Conf_cache.mem_exact conf f
                      in
                      if not (cached || Lineage.Formula.Table.mem fresh f)
                      then Lineage.Formula.Table.add fresh f ())
                    res.Relational.Eval.rows)
          (List.rev !order);
        let distinct =
          Array.of_list
            (Lineage.Formula.Table.fold (fun f () acc -> f :: acc) fresh [])
        in
        let p = Db.confidence_fn ctx.db in
        (* each prewarmed class is a ["prewarm-class"] task span stitched
           under the open [batch] span in class order; the rung a class
           used comes back with its value and is counted post-join, so
           worker domains never touch the shared registry *)
        let fork = Obs.fork obs in
        let compute i f =
          Obs.task fork
            ~attrs:[ ("class", string_of_int i) ]
            "prewarm-class"
            (fun _ ->
              if ctx.mc_fallback then begin
                let tier = ref None in
                let e =
                  Lineage.Approx.confidence
                    ~on_tier:(fun rung -> tier := Some rung)
                    p f
                in
                ((f, Conf_cache.Estimate e), !tier)
              end
              else ((f, Conf_cache.Exact (Lineage.Prob.confidence p f)), None))
        in
        let outs =
          if Array.length distinct = 0 then [||]
          else
            Exec.with_pool_opt ~jobs:ctx.jobs (fun pool ->
                match pool with
                | Some pool -> Exec.Pool.mapi_array pool compute distinct
                | None -> Array.mapi compute distinct)
        in
        Obs.stitch fork (Array.map snd outs);
        Array.iter
          (fun ((_, tier), _) ->
            match tier with
            | Some rung ->
              Obs.incr obs ("ladder." ^ Lineage.Approx.tier_name rung)
            | None -> ())
          outs;
        let values = Array.map (fun ((fv, _), _) -> fv) outs in
        Conf_cache.warm ?obs conf ~db:ctx.db (Array.to_list values);
        Obs.add_attr obs "requests" (string_of_int (List.length requests));
        Obs.add_attr obs "prewarmed" (string_of_int (Array.length distinct));
        (* answer every request in submission order; plans and confidence
           classes now come from the warm caches *)
        List.map (fun req -> answer t req) requests)
    in
    Obs.observe_bounded obs "serving.batch_s" (Obs.now obs -. t0);
    export_gauges t;
    responses
end
