module Tid = Lineage.Tid

type event =
  | Query of {
      user : string;
      purpose : string;
      sql : string;
      threshold : float option;
      released : int;
      withheld : int;
      proposal_cost : float option;
      degraded : string option;
    }
  | Improvement of {
      user : string;
      cost : float;
      increments : (Tid.t * float) list;
    }
  | Denied of { user : string; reason : string }

type entry = { seq : int; event : event }

type t = { next : int; rev_entries : entry list }

let empty = { next = 0; rev_entries = [] }

let entries t = List.rev t.rev_entries
let length t = t.next

let record t event =
  { next = t.next + 1; rev_entries = { seq = t.next; event } :: t.rev_entries }

let record_answer t ~user ~purpose ~sql (resp : Engine.response) =
  record t
    (Query
       {
         user;
         purpose;
         sql;
         threshold = resp.Engine.threshold;
         released = List.length resp.Engine.released;
         withheld = resp.Engine.withheld;
         proposal_cost =
           Option.map (fun p -> p.Engine.cost) resp.Engine.proposal;
         degraded = resp.Engine.degraded;
       })

let record_acceptance t ~user (proposal : Engine.proposal) =
  record t
    (Improvement
       {
         user;
         cost = proposal.Engine.cost;
         increments = proposal.Engine.increments;
       })

let record_denial t ~user ~reason = record t (Denied { user; reason })

let event_user = function
  | Query { user; _ } | Improvement { user; _ } | Denied { user; _ } -> user

let events_for_user t user =
  List.filter (fun e -> String.equal (event_user e.event) user) (entries t)

let event_to_string = function
  | Query
      {
        user;
        purpose;
        sql;
        threshold;
        released;
        withheld;
        proposal_cost;
        degraded;
      } ->
    Printf.sprintf
      "query user=%s purpose=%s threshold=%s released=%d withheld=%d%s%s sql=%s"
      user purpose
      (match threshold with Some b -> Printf.sprintf "%g" b | None -> "-")
      released withheld
      (match proposal_cost with
      | Some c -> Printf.sprintf " proposal_cost=%.2f" c
      | None -> "")
      (match degraded with
      | Some reason -> Printf.sprintf " degraded=%S" reason
      | None -> "")
      sql
  | Improvement { user; cost; increments } ->
    Printf.sprintf "improvement user=%s cost=%.2f increments=%s" user cost
      (String.concat ","
         (List.map
            (fun (tid, p) -> Printf.sprintf "%s->%g" (Tid.to_string tid) p)
            increments))
  | Denied { user; reason } -> Printf.sprintf "denied user=%s reason=%s" user reason

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "Audit trail (%d entries):\n" (length t));
  List.iter
    (fun e ->
      Buffer.add_string buf (Printf.sprintf "  #%04d %s\n" e.seq (event_to_string e.event)))
    (entries t);
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* persistence: tab-separated fields, one entry per line (sql and reason
   may contain spaces, so they come last) *)

let render t =
  String.concat "\n"
    (List.map
       (fun e ->
         match e.event with
         | Query
             {
               user;
               purpose;
               sql;
               threshold;
               released;
               withheld;
               proposal_cost;
               degraded;
             } ->
           Printf.sprintf "Q\t%d\t%s\t%s\t%s\t%d\t%d\t%s\t%s\t%s" e.seq user
             purpose
             (match threshold with Some b -> Printf.sprintf "%g" b | None -> "-")
             released withheld
             (match proposal_cost with
             | Some c -> Printf.sprintf "%g" c
             | None -> "-")
             (match degraded with Some reason -> reason | None -> "-")
             sql
         | Improvement { user; cost; increments } ->
           Printf.sprintf "I\t%d\t%s\t%g\t%s" e.seq user cost
             (String.concat ","
                (List.map
                   (fun (tid, p) -> Printf.sprintf "%s->%g" (Tid.to_string tid) p)
                   increments))
         | Denied { user; reason } ->
           Printf.sprintf "D\t%d\t%s\t%s" e.seq user reason)
       (entries t))

let parse text =
  let ( let* ) = Result.bind in
  let parse_float_opt = function
    | "-" -> Ok None
    | s -> (
      match float_of_string_opt s with
      | Some f -> Ok (Some f)
      | None -> Error (Printf.sprintf "bad number %S" s))
  in
  let parse_increments = function
    | "" -> Ok []
    | s ->
      List.fold_left
        (fun acc part ->
          let* incs = acc in
          match String.index_opt part '-' with
          | Some i
            when i + 1 < String.length part && part.[i + 1] = '>' -> (
            let tid_s = String.sub part 0 i in
            let p_s = String.sub part (i + 2) (String.length part - i - 2) in
            match (Tid.of_string tid_s, float_of_string_opt p_s) with
            | Some tid, Some p -> Ok ((tid, p) :: incs)
            | _ -> Error (Printf.sprintf "bad increment %S" part))
          | _ -> Error (Printf.sprintf "bad increment %S" part))
        (Ok []) (String.split_on_char ',' s)
      |> Result.map List.rev
  in
  let parse_line lineno line =
    let fields = String.split_on_char '\t' line in
    match fields with
    | "Q" :: seq :: user :: purpose :: threshold :: released :: withheld
      :: proposal_cost :: degraded :: sql_parts ->
      let sql = String.concat "\t" sql_parts in
      let degraded = if degraded = "-" then None else Some degraded in
      let* seq =
        Option.to_result ~none:(Printf.sprintf "line %d: bad seq" lineno)
          (int_of_string_opt seq)
      in
      let* threshold = parse_float_opt threshold in
      let* proposal_cost = parse_float_opt proposal_cost in
      let* released =
        Option.to_result ~none:(Printf.sprintf "line %d: bad released" lineno)
          (int_of_string_opt released)
      in
      let* withheld =
        Option.to_result ~none:(Printf.sprintf "line %d: bad withheld" lineno)
          (int_of_string_opt withheld)
      in
      Ok
        {
          seq;
          event =
            Query
              {
                user;
                purpose;
                sql;
                threshold;
                released;
                withheld;
                proposal_cost;
                degraded;
              };
        }
    | [ "I"; seq; user; cost; increments ] ->
      let* seq =
        Option.to_result ~none:(Printf.sprintf "line %d: bad seq" lineno)
          (int_of_string_opt seq)
      in
      let* cost =
        Option.to_result ~none:(Printf.sprintf "line %d: bad cost" lineno)
          (float_of_string_opt cost)
      in
      let* increments = parse_increments increments in
      Ok { seq; event = Improvement { user; cost; increments } }
    | "D" :: seq :: user :: reason_parts ->
      let* seq =
        Option.to_result ~none:(Printf.sprintf "line %d: bad seq" lineno)
          (int_of_string_opt seq)
      in
      Ok { seq; event = Denied { user; reason = String.concat "\t" reason_parts } }
    | _ -> Error (Printf.sprintf "line %d: unrecognized entry" lineno)
  in
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let* entries =
    List.fold_left
      (fun acc (lineno, line) ->
        let* es = acc in
        let* e = parse_line lineno line in
        Ok (e :: es))
      (Ok [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
    |> Result.map List.rev
  in
  let next = List.fold_left (fun acc e -> max acc (e.seq + 1)) 0 entries in
  Ok { next; rev_entries = List.rev entries }
