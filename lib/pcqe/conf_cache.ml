module Db = Relational.Database
module F = Lineage.Formula
module Tid = Lineage.Tid

type value = Exact of float | Estimate of Lineage.Approx.estimate

type t = {
  max_entries : int;
  mutable epochs : int array;
      (* per-shard synced confidence epochs, index-aligned with the
         database's shard numbers; [[||]] until the first sync adopts a
         shard layout *)
  exact : float F.Table.t;
  ladder : Lineage.Approx.estimate F.Table.t;
  circuits : Lineage.Circuit.t F.Table.t;
      (* compiled d-DNNF per class: structure-only, so confidence-epoch
         invalidation drops the cached *values* above but keeps the
         circuit — the next lookup re-evaluates it in one linear pass *)
  by_base : (Tid.t, F.t list ref) Hashtbl.t;
  mutable reused : int;
  mutable recomputed : int;
  mutable invalidated : int;
}

let create ?(max_entries = 65_536) () =
  if max_entries < 1 then
    invalid_arg
      (Printf.sprintf "Conf_cache.create: max_entries %d < 1" max_entries);
  {
    max_entries;
    epochs = [||];
    exact = F.Table.create 256;
    ladder = F.Table.create 64;
    circuits = F.Table.create 64;
    by_base = Hashtbl.create 256;
    reused = 0;
    recomputed = 0;
    invalidated = 0;
  }

let synced_epochs t = Array.copy t.epochs
let length t = F.Table.length t.exact + F.Table.length t.ladder
let mem_exact t f = F.Table.mem t.exact f
let mem_estimate t f = F.Table.mem t.ladder f
let reused t = t.reused
let recomputed t = t.recomputed
let invalidated t = t.invalidated

let clear t =
  F.Table.reset t.exact;
  F.Table.reset t.ladder;
  F.Table.reset t.circuits;
  Hashtbl.reset t.by_base

(* drop every cached class whose formula mentions a dirty base tuple;
   formulas are counted once even when several of their variables are
   dirty (the membership test sees them gone after the first drop) *)
let invalidate_bases ?obs t dirty =
  let dropped = ref 0 in
  Tid.Set.iter
    (fun tid ->
      match Hashtbl.find_opt t.by_base tid with
      | None -> ()
      | Some formulas ->
        List.iter
          (fun f ->
            let present = F.Table.mem t.exact f || F.Table.mem t.ladder f in
            if present then begin
              F.Table.remove t.exact f;
              F.Table.remove t.ladder f;
              incr dropped
            end)
          !formulas;
        Hashtbl.remove t.by_base tid)
    dirty;
  if !dropped > 0 then begin
    t.invalidated <- t.invalidated + !dropped;
    Obs.incr obs ~by:!dropped "serving.invalidated_classes"
  end

(* Wholesale flush restricted to one shard: drop every cached class that
   mentions a base tuple the shard owns.  Classes indexed only under
   foreign tuples cannot have been dirtied by this shard's mutations, so
   they survive — this is what keeps one principal's flood of accepted
   proposals on shard [i] from evicting the serving state of everyone
   whose lineage lives elsewhere. *)
let flush_shard ?obs t ~db shard =
  let dirty =
    Hashtbl.fold
      (fun tid _ acc ->
        if Db.shard_of_tid db tid = shard then Tid.Set.add tid acc else acc)
      t.by_base Tid.Set.empty
  in
  invalidate_bases ?obs t dirty

let sync ?obs t ~db =
  let live = Db.confidence_vector db in
  if t.epochs <> live then begin
    if Array.length t.epochs <> Array.length live then
      (* first sync, or the shard layout changed underneath us: there is
         no per-shard history across a re-partition — flush wholesale *)
      clear t
    else
      Array.iteri
        (fun i since ->
          if since <> live.(i) then
            match Db.shard_changed_since db ~shard:i ~since with
            | Some dirty when Tid.Set.is_empty dirty -> ()
            | Some dirty -> invalidate_bases ?obs t dirty
            | None ->
              (* shard [i]'s change log does not reach back to our epoch
                 (or the database diverged from the history we cached
                 against): correctness demands a flush — of this shard's
                 classes only *)
              flush_shard ?obs t ~db i)
        t.epochs;
    t.epochs <- live
  end

let shard_sizes t ~shards =
  let sizes = Array.make (max 1 shards) 0 in
  Hashtbl.iter
    (fun tid _ ->
      let i = Db.shard_of ~shards tid in
      sizes.(i) <- sizes.(i) + 1)
    t.by_base;
  sizes

let index t f =
  Tid.Set.iter
    (fun tid ->
      match Hashtbl.find_opt t.by_base tid with
      | Some fs -> fs := f :: !fs
      | None -> Hashtbl.replace t.by_base tid (ref [ f ]))
    (F.vars f)

let store t f value =
  if length t >= t.max_entries then clear t;
  (match value with
  | Exact c -> F.Table.replace t.exact f c
  | Estimate e -> F.Table.replace t.ladder f e);
  index t f

(* Circuits answer exactly where the ladder would take the Shannon rung
   ([Prob.exact]): non-read-once lineage below the expansion-cost cap.
   On that domain the circuit value is bitwise [Prob.exact]'s, so the
   identity contract holds; the OBDD and Monte-Carlo rungs (different
   float expressions) are never displaced. *)
let circuit_eligible f =
  (not (F.is_read_once f))
  && Lineage.Prob.shannon_cost_estimate f <= Lineage.Approx.exact_threshold

(* Compile-or-reuse the class circuit and evaluate it under [db]'s
   current confidence vector.  [None] when the circuit path is off, the
   class is outside the exactness domain, or the build hit the node cap
   (counted as [ladder.circuit_fallback] — the ladder takes over). *)
let circuit_value ?obs t ~db f =
  if not (Lineage.Circuit.enabled () && circuit_eligible f) then None
  else
    let eval c =
      Some (Lineage.Circuit.eval c (Db.confidence_fn db))
    in
    match F.Table.find_opt t.circuits f with
    | Some c ->
      Obs.incr obs "ladder.circuit_reeval";
      eval c
    | None -> (
      match Lineage.Circuit.compile_opt f with
      | Some c ->
        if F.Table.length t.circuits >= t.max_entries then
          F.Table.reset t.circuits;
        F.Table.replace t.circuits f c;
        Obs.incr obs "ladder.circuit_build";
        eval c
      | None ->
        Obs.incr obs "ladder.circuit_fallback";
        None)

let confidence_tiered ?obs t ~db f =
  match f with
  | F.Var v when Lineage.Circuit.enabled () ->
    (* single-tuple lineage: the answer is one base-confidence lookup —
       no sync, no class bookkeeping *)
    (Db.confidence db v, "var")
  | _ -> (
    sync ?obs t ~db;
    match F.Table.find_opt t.exact f with
    | Some c ->
      t.reused <- t.reused + 1;
      Obs.incr obs "serving.reused_classes";
      (c, "cached")
    | None ->
      let c, tier =
        match circuit_value ?obs t ~db f with
        | Some c -> (c, "circuit")
        | None ->
          let c = Lineage.Prob.confidence (Db.confidence_fn db) f in
          (c, if F.is_read_once f then "read_once" else "shannon")
      in
      store t f (Exact c);
      t.recomputed <- t.recomputed + 1;
      Obs.incr obs "serving.recomputed_classes";
      (c, tier))

let confidence ?obs t ~db f = fst (confidence_tiered ?obs t ~db f)

let estimate_tiered ?obs ?pool ?(on_tier = fun (_ : Lineage.Approx.tier) -> ())
    t ~db f =
  match f with
  | F.Var v when Lineage.Circuit.enabled () ->
    on_tier Lineage.Approx.Var;
    (Lineage.Approx.Exact (Db.confidence db v), "var")
  | _ -> (
    sync ?obs t ~db;
    match F.Table.find_opt t.ladder f with
    | Some e ->
      t.reused <- t.reused + 1;
      Obs.incr obs "serving.reused_classes";
      (e, "cached")
    | None ->
      let e, tier =
        match circuit_value ?obs t ~db f with
        | Some c ->
          on_tier Lineage.Approx.Circuit;
          (Lineage.Approx.Exact c, "circuit")
        | None ->
          let name = ref "" in
          let e =
            Lineage.Approx.confidence ?pool
              ~on_tier:(fun rung ->
                name := Lineage.Approx.tier_name rung;
                on_tier rung)
              (Db.confidence_fn db) f
          in
          (e, !name)
      in
      store t f (Estimate e);
      t.recomputed <- t.recomputed + 1;
      Obs.incr obs "serving.recomputed_classes";
      (e, tier))

let estimate ?obs ?pool ?on_tier t ~db f =
  fst (estimate_tiered ?obs ?pool ?on_tier t ~db f)

let warm ?obs t ~db entries =
  sync ?obs t ~db;
  List.iter
    (fun (f, value) ->
      let present =
        match value with
        | Exact _ -> F.Table.mem t.exact f
        | Estimate _ -> F.Table.mem t.ladder f
      in
      if not present then begin
        store t f value;
        t.recomputed <- t.recomputed + 1;
        Obs.incr obs "serving.recomputed_classes"
      end)
    entries
