module Db = Relational.Database
module F = Lineage.Formula
module Tid = Lineage.Tid

type value = Exact of float | Estimate of Lineage.Approx.estimate

type t = {
  max_entries : int;
  mutable epoch : int; (* confidence epoch the entries are valid for *)
  exact : float F.Table.t;
  ladder : Lineage.Approx.estimate F.Table.t;
  by_base : (Tid.t, F.t list ref) Hashtbl.t;
  mutable reused : int;
  mutable recomputed : int;
  mutable invalidated : int;
}

let create ?(max_entries = 65_536) () =
  if max_entries < 1 then
    invalid_arg
      (Printf.sprintf "Conf_cache.create: max_entries %d < 1" max_entries);
  {
    max_entries;
    epoch = 0;
    exact = F.Table.create 256;
    ladder = F.Table.create 64;
    by_base = Hashtbl.create 256;
    reused = 0;
    recomputed = 0;
    invalidated = 0;
  }

let epoch t = t.epoch
let length t = F.Table.length t.exact + F.Table.length t.ladder
let mem_exact t f = F.Table.mem t.exact f
let mem_estimate t f = F.Table.mem t.ladder f
let reused t = t.reused
let recomputed t = t.recomputed
let invalidated t = t.invalidated

let clear t =
  F.Table.reset t.exact;
  F.Table.reset t.ladder;
  Hashtbl.reset t.by_base

(* drop every cached class whose formula mentions a dirty base tuple;
   formulas are counted once even when several of their variables are
   dirty (the membership test sees them gone after the first drop) *)
let invalidate_bases ?obs t dirty =
  let dropped = ref 0 in
  Tid.Set.iter
    (fun tid ->
      match Hashtbl.find_opt t.by_base tid with
      | None -> ()
      | Some formulas ->
        List.iter
          (fun f ->
            let present = F.Table.mem t.exact f || F.Table.mem t.ladder f in
            if present then begin
              F.Table.remove t.exact f;
              F.Table.remove t.ladder f;
              incr dropped
            end)
          !formulas;
        Hashtbl.remove t.by_base tid)
    dirty;
  if !dropped > 0 then begin
    t.invalidated <- t.invalidated + !dropped;
    Obs.incr obs ~by:!dropped "serving.invalidated_classes"
  end

let sync ?obs t ~db =
  let live = Db.confidence_epoch db in
  if t.epoch <> live then begin
    (match Db.changed_since db ~since:t.epoch with
    | Some dirty when Tid.Set.is_empty dirty -> ()
    | Some dirty -> invalidate_bases ?obs t dirty
    | None ->
      (* the change log does not reach back to our epoch (or the
         database diverged from the history we cached against):
         correctness demands a wholesale flush *)
      clear t);
    t.epoch <- live
  end

let index t f =
  Tid.Set.iter
    (fun tid ->
      match Hashtbl.find_opt t.by_base tid with
      | Some fs -> fs := f :: !fs
      | None -> Hashtbl.replace t.by_base tid (ref [ f ]))
    (F.vars f)

let store t f value =
  if length t >= t.max_entries then clear t;
  (match value with
  | Exact c -> F.Table.replace t.exact f c
  | Estimate e -> F.Table.replace t.ladder f e);
  index t f

let confidence ?obs t ~db f =
  sync ?obs t ~db;
  match F.Table.find_opt t.exact f with
  | Some c ->
    t.reused <- t.reused + 1;
    Obs.incr obs "serving.reused_classes";
    c
  | None ->
    let c = Lineage.Prob.confidence (Db.confidence_fn db) f in
    store t f (Exact c);
    t.recomputed <- t.recomputed + 1;
    Obs.incr obs "serving.recomputed_classes";
    c

let estimate ?obs ?pool ?on_tier t ~db f =
  sync ?obs t ~db;
  match F.Table.find_opt t.ladder f with
  | Some e ->
    t.reused <- t.reused + 1;
    Obs.incr obs "serving.reused_classes";
    e
  | None ->
    let e = Lineage.Approx.confidence ?pool ?on_tier (Db.confidence_fn db) f in
    store t f (Estimate e);
    t.recomputed <- t.recomputed + 1;
    Obs.incr obs "serving.recomputed_classes";
    e

let warm ?obs t ~db entries =
  sync ?obs t ~db;
  List.iter
    (fun (f, value) ->
      let present =
        match value with
        | Exact _ -> F.Table.mem t.exact f
        | Estimate _ -> F.Table.mem t.ladder f
      in
      if not present then begin
        store t f value;
        t.recomputed <- t.recomputed + 1;
        Obs.incr obs "serving.recomputed_classes"
      end)
    entries
