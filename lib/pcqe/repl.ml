module Db = Relational.Database
module StrMap = Map.Make (String)

type t = {
  ctx : Engine.context;
  user : string option;
  purpose : string;
  perc : float;
  last_proposal : Engine.proposal option;
  last_sql : string option;
  prepared : string StrMap.t;  (* \prepare name -> SQL text *)
  audit : Audit.t;
  obs : Obs.t;  (* session-lifetime registry; trace reset per query *)
  timing : bool;
  faults : Resilience.Fault.plan option;  (* \faults — armed chaos plan *)
}

type outcome = Reply of t * string | Quit

let create ctx =
  (* the REPL is a serving session: plug in caches once so repeated
     queries reuse prepared plans and confidence classes (\caches shows
     the counters); a context that already carries caches keeps them *)
  let ctx =
    match ctx.Engine.caches with
    | Some _ -> ctx
    | None -> { ctx with Engine.caches = Some (Caches.create ()) }
  in
  {
    ctx;
    user = None;
    purpose = "adhoc";
    perc = 1.0;
    last_proposal = None;
    last_sql = None;
    prepared = StrMap.empty;
    audit = Audit.empty;
    obs = Obs.wall ();
    timing = false;
    faults = None;
  }

let context t = t.ctx

let audit t = t.audit

let help_text =
  {|Meta commands:
  \user <name>        act as this user
  \purpose <purpose>  set the query purpose
  \perc <fraction>    set the required result fraction (theta)
  \solver <name>      heuristic | greedy | dnc | annealing
  \jobs <n>           parallelism for strategy finding (0 = one per core)
  \deadline <ms>|off  wall-clock budget per answer; expiry degrades the
                      proposal to best-so-far (reported and audited)
  \mc-fallback on|off Monte-Carlo confidence fallback (fail-closed:
                      ambiguous intervals are withheld)
  \apply              accept the last improvement proposal
  \prepare <name> <sql>  compile a named query once (plan cache)
  \exec <name>        answer a prepared query under the current settings
  \caches             show serving-cache statistics (plans + confidences)
  \shards [n]         show per-shard epochs, tuples and cache occupancy;
                      with n, hash-repartition the database across n
                      shards (pure routing: answers are unchanged)
  \faults <seed> <site>[,<site>...] [max]  arm a seeded fault-injection
                      plan (rate 0.05) over the named sites, optionally
                      capped at <max> injections; \faults shows the armed
                      plan with per-site hit counts; \faults off disarms
  \explain            lineage explanations for the last query
  \profile [sql]      re-run the last query (or the given SQL) with
                      profiling on: annotated plan with per-stage time,
                      allocation, cache attribution and ladder rungs
  \timing on|off      print the per-stage timed plan after each query
  \metrics            show the counters and histograms accumulated so far
  \tables             list relations (with cardinalities)
  \views              list registered views
  \policies           list confidence policies
  \whoami             show the session settings
  \help               this text
  \quit               leave
Anything else is SQL, answered under the current user and purpose.|}

let solver_of_string = function
  | "heuristic" -> Some Optimize.Solver.heuristic
  | "heuristic-seeded" -> Some Optimize.Solver.heuristic_seeded
  | "greedy" -> Some Optimize.Solver.greedy
  | "dnc" | "divide-and-conquer" -> Some Optimize.Solver.divide_conquer
  | "annealing" -> Some Optimize.Solver.annealing
  | _ -> None

let run_sql t sql =
  match t.user with
  | None ->
    Reply (t, "no user set: \\user <name> first (see \\help)")
  | Some user -> (
    let request =
      { Engine.query = Query.sql sql; user; purpose = t.purpose; perc = t.perc }
    in
    let ctx =
      if t.timing then begin
        (* fresh span tree per query; the metrics registry accumulates
           across the session (inspect with \metrics) *)
        Obs.Trace.reset t.obs.Obs.trace;
        { t.ctx with Engine.obs = Some t.obs }
      end
      else t.ctx
    in
    match Engine.answer ctx request with
    | exception Resilience.Fault.Injected what ->
      (* an armed \faults plan fired: the query aborts, the session
         survives — exactly what the chaos harness asserts *)
      Reply
        ( {
            t with
            audit =
              Audit.record_denial t.audit ~user ~reason:("fault injected: " ^ what);
          },
          Printf.sprintf "fault injected: %s (nothing released; \\faults shows the plan)"
            what )
    | Error msg ->
      Reply
        ( { t with audit = Audit.record_denial t.audit ~user ~reason:msg },
          "error: " ^ msg )
    | Ok resp ->
      let text = Report.response_to_string ~max_rows:50 resp in
      let text =
        if t.timing then
          text ^ Report.timed_to_string ~response:resp t.obs
        else text
      in
      let t =
        {
          t with
          last_proposal = resp.Engine.proposal;
          last_sql = Some sql;
          audit =
            Audit.record_answer t.audit ~user ~purpose:t.purpose ~sql resp;
        }
      in
      let text =
        match resp.Engine.proposal with
        | Some _ -> text ^ "(\\apply to accept the proposal)\n"
        | None -> text
      in
      Reply (t, String.trim text))

(* Profile a query through the warm serving context, on the session's
   wall-clock handle so the per-stage numbers are real timings.  The
   answer itself is discarded (profiles are diagnostics; the response is
   bit-identical to the unprofiled run, property-tested), only the
   annotated plan is shown. *)
let profile_sql t sql =
  match t.user with
  | None -> Reply (t, "no user set: \\user <name> first (see \\help)")
  | Some user -> (
    let request =
      { Engine.query = Query.sql sql; user; purpose = t.purpose; perc = t.perc }
    in
    Obs.Trace.reset t.obs.Obs.trace;
    let ctx = { t.ctx with Engine.profile = true; obs = Some t.obs } in
    match Engine.answer ctx request with
    | Error msg -> Reply (t, "error: " ^ msg)
    | Ok resp -> (
      match resp.Engine.profile with
      | Some p -> Reply (t, String.trim (Report.profile_to_string p))
      | None -> Reply (t, "no profile recorded")))

let meta t line =
  let words =
    String.split_on_char ' ' line |> List.filter (fun w -> w <> "")
  in
  match words with
  | [ "\\quit" ] | [ "\\q" ] | [ "\\exit" ] -> Quit
  | [ "\\help" ] | [ "\\h" ] -> Reply (t, help_text)
  | [ "\\user"; name ] -> Reply ({ t with user = Some name }, "acting as " ^ name)
  | [ "\\purpose"; purpose ] ->
    Reply ({ t with purpose }, "purpose set to " ^ purpose)
  | [ "\\perc"; value ] -> (
    match float_of_string_opt value with
    | Some p when p >= 0.0 && p <= 1.0 ->
      Reply ({ t with perc = p }, Printf.sprintf "perc set to %g" p)
    | _ -> Reply (t, Printf.sprintf "bad fraction %S (need [0,1])" value))
  | [ "\\solver"; name ] -> (
    match solver_of_string name with
    | Some solver ->
      Reply
        ( { t with ctx = { t.ctx with Engine.solver } },
          "solver set to " ^ Optimize.Solver.algorithm_name solver )
    | None -> Reply (t, Printf.sprintf "unknown solver %S" name))
  | [ "\\jobs"; n ] -> (
    match int_of_string_opt n with
    | Some j when j >= 0 ->
      let jobs = Exec.resolve_jobs ~jobs:j () in
      Reply
        ( { t with ctx = { t.ctx with Engine.jobs } },
          Printf.sprintf "jobs set to %d" jobs )
    | _ -> Reply (t, Printf.sprintf "invalid jobs count %S" n))
  | [ "\\deadline"; "off" ] ->
    Reply
      ( { t with ctx = { t.ctx with Engine.deadline = Resilience.Deadline.No_deadline } },
        "deadline off" )
  | [ "\\deadline"; v ] -> (
    match float_of_string_opt v with
    | Some ms when ms > 0.0 ->
      Reply
        ( { t with ctx = { t.ctx with Engine.deadline = Resilience.Deadline.Wall_ms ms } },
          Printf.sprintf "deadline set to %gms per answer" ms )
    | _ -> Reply (t, Printf.sprintf "bad deadline %S (need ms > 0, or off)" v))
  | [ "\\deadline" ] ->
    Reply
      ( t,
        match t.ctx.Engine.deadline with
        | Resilience.Deadline.No_deadline -> "no deadline (\\deadline <ms>|off)"
        | Resilience.Deadline.Wall_ms ms -> Printf.sprintf "deadline: %gms" ms
        | Resilience.Deadline.Logical n ->
          Printf.sprintf "deadline: %d logical ticks" n )
  | [ "\\mc-fallback"; "on" ] ->
    Reply
      ( { t with ctx = { t.ctx with Engine.mc_fallback = true } },
        "mc-fallback on: entangled lineage degrades to Monte-Carlo intervals \
         (ambiguous results withheld)" )
  | [ "\\mc-fallback"; "off" ] ->
    Reply
      ( { t with ctx = { t.ctx with Engine.mc_fallback = false } },
        "mc-fallback off" )
  | [ "\\mc-fallback" ] ->
    Reply
      ( t,
        Printf.sprintf "mc-fallback is %s (\\mc-fallback on|off)"
          (if t.ctx.Engine.mc_fallback then "on" else "off") )
  | [ "\\apply" ] -> (
    match t.last_proposal with
    | None -> Reply (t, "no pending proposal")
    | Some proposal ->
      let ctx = Engine.accept_proposal t.ctx proposal in
      let audit =
        Audit.record_acceptance t.audit
          ~user:(Option.value ~default:"(unset)" t.user)
          proposal
      in
      Reply
        ( { t with ctx; last_proposal = None; audit },
          Printf.sprintf "applied %d increment(s) at cost %.2f"
            (List.length proposal.Engine.increments)
            proposal.Engine.cost ))
  | "\\prepare" :: name :: (_ :: _ as sql_words) -> (
    let sql = String.concat " " sql_words in
    let session = Engine.Session.create t.ctx in
    match Engine.Session.prepare session (Query.sql sql) with
    | Ok p ->
      Reply
        ( { t with prepared = StrMap.add name sql t.prepared },
          Printf.sprintf "prepared %s over %s" name
            (String.concat ", " (Prepared.base_relations p)) )
    | Error msg -> Reply (t, "error: " ^ msg))
  | [ "\\prepare" ] | [ "\\prepare"; _ ] ->
    Reply (t, "usage: \\prepare <name> <sql>")
  | [ "\\exec"; name ] -> (
    match StrMap.find_opt name t.prepared with
    | Some sql -> run_sql t sql
    | None ->
      Reply
        ( t,
          Printf.sprintf "no prepared query %S (\\prepare <name> <sql>)" name ))
  | [ "\\exec" ] ->
    let names = List.map fst (StrMap.bindings t.prepared) in
    Reply
      ( t,
        if names = [] then "no prepared queries (\\prepare <name> <sql>)"
        else
          "prepared queries:\n"
          ^ String.concat "\n" (List.map (fun n -> "  " ^ n) names) )
  | [ "\\caches" ] -> (
    match t.ctx.Engine.caches with
    | Some caches -> Reply (t, String.trim (Caches.stats_to_string caches))
    | None -> Reply (t, "serving caches are off"))
  | [ "\\shards" ] ->
    let db = t.ctx.Engine.db in
    let shards = Db.shard_count db in
    let sv = Db.structural_vector db and cv = Db.confidence_vector db in
    let tuples = Db.shard_tuples db in
    let cache_sizes =
      Option.map
        (fun caches -> Conf_cache.shard_sizes (Caches.conf caches) ~shards)
        t.ctx.Engine.caches
    in
    let lines =
      Printf.sprintf "%d shard(s):" shards
      :: List.init shards (fun i ->
             Printf.sprintf
               "  shard %d: tuples %-6d structural %-6d confidence %-6d%s" i
               tuples.(i) sv.(i) cv.(i)
               (match cache_sizes with
               | Some s -> Printf.sprintf " conf-cache %d" s.(i)
               | None -> ""))
    in
    Reply (t, String.concat "\n" lines)
  | [ "\\shards"; n ] -> (
    match int_of_string_opt n with
    | Some n when n >= 1 ->
      Reply
        ( {
            t with
            ctx = { t.ctx with Engine.db = Db.with_shards t.ctx.Engine.db n };
          },
          Printf.sprintf
            "repartitioned into %d shard(s); answers are unchanged" n )
    | _ -> Reply (t, Printf.sprintf "bad shard count %S (need >= 1)" n))
  | [ "\\faults"; "off" ] ->
    Resilience.Fault.disarm ();
    Reply
      ( { t with faults = None },
        match t.faults with
        | Some p ->
          Printf.sprintf "faults disarmed (%d injected)"
            (Resilience.Fault.injected p)
        | None -> "faults disarmed" )
  | [ "\\faults" ] -> (
    match t.faults with
    | None ->
      Reply
        ( t,
          "no fault plan armed (\\faults <seed> <site>[,<site>...] [max])\n"
          ^ "registered sites: "
          ^ String.concat ", " (Resilience.Fault.registered_sites ()) )
    | Some p ->
      let module F = Resilience.Fault in
      let lines =
        [
          Printf.sprintf "  %-24s %d" "seed" (F.seed p);
          Printf.sprintf "  %-24s %g" "rate" (F.rate p);
          Printf.sprintf "  %-24s %s" "max-injections"
            (match F.max_injections p with
            | None -> "unlimited"
            | Some m -> string_of_int m);
          Printf.sprintf "  %-24s %d" "injected" (F.injected p);
        ]
        @ List.map
            (fun (site, n) -> Printf.sprintf "  %-24s %d hit(s)" site n)
            (F.hits p)
      in
      Reply (t, "armed fault plan:\n" ^ String.concat "\n" lines))
  | "\\faults" :: seed :: sites :: rest -> (
    match
      ( int_of_string_opt seed,
        match rest with
        | [] -> Some None
        | [ m ] -> Option.map Option.some (int_of_string_opt m)
        | _ -> None )
    with
    | Some seed, Some max_injections -> (
      let sites = String.split_on_char ',' sites |> List.filter (( <> ) "") in
      match
        Resilience.Fault.plan ?max_injections ~sites ~seed ()
      with
      | p ->
        Resilience.Fault.arm p;
        Reply
          ( { t with faults = Some p },
            Printf.sprintf "fault plan armed: seed %d over %s%s" seed
              (String.concat ", " sites)
              (match max_injections with
              | None -> ""
              | Some m -> Printf.sprintf ", at most %d injection(s)" m) )
      | exception Invalid_argument msg -> Reply (t, "error: " ^ msg))
    | _ ->
      Reply (t, "usage: \\faults <seed> <site>[,<site>...] [max] | \\faults off"))
  | [ "\\explain" ] -> (
    match t.last_sql with
    | None -> Reply (t, "no previous query to explain")
    | Some sql -> (
      let ( let* ) = Result.bind in
      let result =
        let* plan = Relational.Sql_planner.compile sql in
        let plan = Relational.Views.expand t.ctx.Engine.views plan in
        let* plan = Relational.Rewrite.optimize t.ctx.Engine.db plan in
        let* res = Relational.Eval.run t.ctx.Engine.db plan in
        let p = Db.confidence_fn t.ctx.Engine.db in
        let buf = Buffer.create 512 in
        List.iteri
          (fun i row ->
            if i < 20 then begin
              let tier = ref "read_once" in
              let est =
                Lineage.Approx.confidence
                  ~on_tier:(fun t -> tier := Lineage.Approx.tier_name t)
                  p row.Relational.Eval.lineage
              in
              ignore est;
              Buffer.add_string buf
                (Printf.sprintf "%s  confidence %.4f\n"
                   (Relational.Tuple.to_string row.Relational.Eval.tuple)
                   (Relational.Eval.confidence t.ctx.Engine.db row));
              Buffer.add_string buf
                (Lineage.Explain.to_string ~tier:!tier p
                   row.Relational.Eval.lineage)
            end)
          res.Relational.Eval.rows;
        if List.length res.Relational.Eval.rows > 20 then
          Buffer.add_string buf "... (first 20 rows only)\n";
        Ok (Buffer.contents buf)
      in
      match result with
      | Ok text -> Reply (t, String.trim text)
      | Error msg -> Reply (t, "error: " ^ msg)))
  | [ "\\profile" ] -> (
    match t.last_sql with
    | None -> Reply (t, "no previous query to profile (run one first)")
    | Some sql -> profile_sql t sql)
  | "\\profile" :: (_ :: _ as sql_words) ->
    profile_sql t (String.concat " " sql_words)
  | [ "\\timing"; "on" ] ->
    Reply ({ t with timing = true }, "timing on: every query prints its timed plan")
  | [ "\\timing"; "off" ] -> Reply ({ t with timing = false }, "timing off")
  | [ "\\timing" ] ->
    Reply (t, Printf.sprintf "timing is %s (\\timing on|off)"
             (if t.timing then "on" else "off"))
  | [ "\\metrics" ] ->
    let text = Obs.Metrics.render t.obs.Obs.metrics in
    Reply
      ( t,
        if text = "" then
          "no metrics recorded yet (\\timing on, then run a query)"
        else String.trim text )
  | [ "\\audit" ] -> Reply (t, String.trim (Audit.to_string t.audit))
  | [ "\\save"; dir ] -> (
    let w =
      {
        Workspace.context = t.ctx;
        cost_specs = [];
        default_cost = Cost.Cost_model.linear ~rate:100.0;
        caps = [];
      }
    in
    match Workspace.save dir w with
    | Ok () ->
      (* persist the session's audit trail alongside the workspace *)
      let audit_path = Filename.concat dir "audit.log" in
      (try
         let oc = open_out_bin audit_path in
         output_string oc (Audit.render t.audit ^ "\n");
         close_out oc
       with Sys_error _ -> ());
      Reply (t, "saved workspace (and audit.log) to " ^ dir)
    | Error msg -> Reply (t, "save failed: " ^ msg))
  | [ "\\tables" ] ->
    let lines =
      List.map
        (fun name ->
          let rel = Db.relation_exn t.ctx.Engine.db name in
          Printf.sprintf "  %-20s %d row(s)  (%s)" name
            (Relational.Relation.cardinality rel)
            (Relational.Schema.to_string (Relational.Relation.schema rel)))
        (Db.relation_names t.ctx.Engine.db)
    in
    Reply (t, if lines = [] then "no relations" else String.concat "\n" lines)
  | [ "\\views" ] ->
    let names = Relational.Views.names t.ctx.Engine.views in
    Reply
      ( t,
        if names = [] then "no views"
        else String.concat "\n" (List.map (fun n -> "  " ^ n) names) )
  | [ "\\policies" ] ->
    let ps = Rbac.Policy.to_list t.ctx.Engine.policies in
    Reply
      ( t,
        if ps = [] then "no policies"
        else
          String.concat "\n"
            (List.map (fun p -> "  " ^ Rbac.Policy.to_string p) ps) )
  | [ "\\whoami" ] ->
    Reply
      ( t,
        Printf.sprintf "user=%s purpose=%s perc=%g solver=%s jobs=%d%s%s"
          (Option.value ~default:"(unset)" t.user)
          t.purpose t.perc
          (Optimize.Solver.algorithm_name t.ctx.Engine.solver)
          t.ctx.Engine.jobs
          (match t.ctx.Engine.deadline with
          | Resilience.Deadline.No_deadline -> ""
          | Resilience.Deadline.Wall_ms ms ->
            Printf.sprintf " deadline=%gms" ms
          | Resilience.Deadline.Logical n ->
            Printf.sprintf " deadline=%dticks" n)
          (if t.ctx.Engine.mc_fallback then " mc-fallback=on" else "") )
  | cmd :: _ -> Reply (t, Printf.sprintf "unknown command %s (try \\help)" cmd)
  | [] -> Reply (t, "")

let execute t line =
  let line = String.trim line in
  if line = "" then Reply (t, "")
  else if line.[0] = '\\' then meta t line
  else if line.[0] = '.' then
    (* psql-style backslash commands also answer to a dot prefix
       (".timing on", ".metrics") *)
    meta t ("\\" ^ String.sub line 1 (String.length line - 1))
  else run_sql t line
