(** The policy-compliant query evaluation engine — the paper's Fig. 1.

    A {!context} bundles the five framework components:
    confidence-annotated {e database}, {e RBAC} model (traditional access
    control over base relations), {e confidence-policy} store, per-tuple
    {e cost functions} and confidence {e caps} (for strategy finding), and
    the configured strategy-finding {e solver}.

    A user request is [⟨Q, pu, perc⟩] (§3.2): a query, a purpose, and the
    fraction of results the user needs back.  {!answer} runs the full data
    flow: RBAC check → lineage-carrying evaluation → confidence computation
    → policy filtering → (if too few results pass) strategy finding, whose
    increment proposal and cost are reported back.  {!accept_proposal}
    implements the data-quality-improvement step: apply the increments and
    re-answer. *)

type context = {
  db : Relational.Database.t;
  rbac : Rbac.Core_rbac.t;
  policies : Rbac.Policy.store;
  views : Relational.Views.t;
      (** named views, expanded before evaluation (quality-view style) *)
  cost_of : Lineage.Tid.t -> Cost.Cost_model.t;
  cap_of : Lineage.Tid.t -> float;
  solver : Optimize.Solver.algorithm;
  delta : float;
  jobs : int;
      (** parallelism for strategy finding; [1] = single-threaded.
          Outcomes are bit-identical at every level (see {!Exec}). *)
  deadline : Resilience.Deadline.spec;
      (** per-answer budget.  A fresh token is started for every
          {!answer}; a wall budget covers evaluation {e and} strategy
          finding, so the solver gets whatever remains.  On expiry the
          solver returns its best-so-far {e feasible} proposal and the
          response reports [degraded].  [No_deadline] (the default) is
          unbounded. *)
  mc_fallback : bool;
      (** confidence degradation ladder: compute per-result confidence
          with {!Lineage.Approx.confidence} (exact tiers first,
          Monte-Carlo intervals when the lineage is too entangled) and
          release {e fail-closed} — a tuple whose interval straddles the
          threshold is withheld and counted in [response.ambiguous].
          Off by default: exact confidence for every result. *)
  obs : Obs.t option;
      (** observability handle; [None] (the default) disables tracing and
          metrics entirely — the engine then allocates no spans *)
  caches : Caches.t option;
      (** serving caches (prepared plans + per-epoch confidence classes).
          [None] (the default) is the one-shot cold path.  With caches the
          prepare stage goes through the {!Plan_cache} (keyed by query
          text, validated against the database's structural epoch and the
          view store's epoch) and the confidence stage through the
          {!Conf_cache} (keyed by lineage class, invalidated by the
          confidence epoch); responses are bit-identical either way
          (property-tested) — the caches only remove repeated work. *)
  profile : bool;
      (** attach an {!Obs.Profile.t} to every response: per-stage wall
          time and allocation from the request's span tree, plus the
          counter deltas over the run (cache attribution, ladder rungs,
          incremental vs full evaluations).  When [obs] is [None] a
          private deterministic handle is used per answer, so profiling
          needs no wiring.  Observe-only: answers are bit-identical with
          profiling on or off (property-tested).  Off by default. *)
}

val make_context :
  ?solver:Optimize.Solver.algorithm ->
  ?delta:float ->
  ?jobs:int ->
  ?deadline:Resilience.Deadline.spec ->
  ?mc_fallback:bool ->
  ?cost_of:(Lineage.Tid.t -> Cost.Cost_model.t) ->
  ?cap_of:(Lineage.Tid.t -> float) ->
  ?views:Relational.Views.t ->
  ?obs:Obs.t ->
  ?caches:Caches.t ->
  ?profile:bool ->
  db:Relational.Database.t ->
  rbac:Rbac.Core_rbac.t ->
  policies:Rbac.Policy.store ->
  unit ->
  context
(** Defaults: divide-and-conquer solver, δ = 0.1, linear cost of rate 100,
    cap 1.0 for every tuple, no deadline, exact confidence (no
    Monte-Carlo fallback), observability off.

    [jobs] resolves via {!Exec.resolve_jobs}: an explicit value wins
    ([0] = one per core), then the [PCQE_JOBS] environment variable,
    defaulting to [1]. *)

type request = {
  query : Query.t;  (** SQL text or a prebuilt algebra plan *)
  user : string;
  purpose : string;
  perc : float;  (** θ — fraction of results the user needs, in [\[0,1\]] *)
}

type released = {
  tuple : Relational.Tuple.t;
  lineage : Lineage.Formula.t;
  confidence : float;
  conf_tier : string;
      (** which confidence tier produced [confidence] — ["safe_plan"],
          ["var"], ["circuit"], ["cached"], or a ladder rung name
          ([read_once], [shannon], [obdd], [monte_carlo]) — so degraded
          vs. exact answers are auditable per tuple *)
}

type proposal = {
  increments : (Lineage.Tid.t * float) list;
      (** target confidence per base tuple *)
  cost : float;
  projected_release : int;
      (** results that would clear the threshold after applying *)
  solver_name : string;
  solver_stats : Optimize.Solver.stats;
      (** structured solver telemetry (nodes, prunes, iterations, …) *)
  solver_detail : string;  (** rendering of [solver_stats] *)
  elapsed_s : float;
  resolution : Optimize.Solver.resolution;
      (** [Partial] when a deadline stopped the solver early: the
          increments are the best-so-far {e feasible} plan, possibly not
          the cheapest — a degraded proposal never weakens compliance *)
}

type response = {
  schema : Relational.Schema.t;
  released : released list;  (** results above the threshold, returned now *)
  withheld : int;  (** results filtered out by the policy *)
  ambiguous : int;
      (** of [withheld]: results whose Monte-Carlo confidence interval
          straddles the threshold — withheld fail-closed (only nonzero
          with [mc_fallback]) *)
  requested : int;
      (** ⌈perc · n⌉ — how many results the request needs released; computed
          once here so callers and reports never redo the ceil *)
  threshold : float option;
      (** effective β; [None] when no policy applies (nothing filtered) *)
  applied_policies : Rbac.Policy.t list;
  proposal : proposal option;
      (** present when fewer than [perc] of the results were released and
          strategy finding found (or attempted) a remedy *)
  infeasible : bool;
      (** [true] when strategy finding ran to completion and could not
          meet the requirement even at the confidence caps.  A
          deadline-cut solve with no feasible best-so-far reports
          [degraded] instead — an early stop proves nothing. *)
  degraded : string option;
      (** [Some reason] when the per-answer deadline stopped strategy
          finding early (see {!proposal.resolution}); the reason also
          lands in the audit log *)
  profile : Obs.Profile.t option;
      (** present iff [ctx.profile]: the request's per-stage profile —
          span path, elapsed, allocated bytes and attributes per stage,
          plus the counter deltas recorded while this answer ran *)
}

val answer : context -> request -> (response, string) result
(** Run the full PCQE data flow.  Errors: RBAC denial, SQL/plan errors,
    unknown user.  Policy selection considers {e all} of the user's
    authorized roles (assigned plus inherited).

    With [ctx.obs] set, each run records a root ["answer"] span with child
    spans ["parse/plan"], ["view-expand"], ["rewrite"], ["rbac"], ["eval"]
    (attr [rows]), ["confidence"], ["policy-filter"] (attrs [released],
    [withheld]), ["strategy-finding"] (when the solver runs; contains the
    solver's own ["solve"] span), and ["projection"], plus [engine.*]
    counters.  Observability is strictly observe-only: responses are
    identical with it on or off (property-tested). *)

val answer_session :
  context -> Rbac.Core_rbac.session -> Query.t -> purpose:string ->
  perc:float -> (response, string) result
(** Like {!answer}, but under an RBAC session: only the session's
    activated roles (and their juniors) carry permissions and select
    confidence policies — the least-privilege variant. *)

val accept_proposal : context -> proposal -> context
(** Data-quality improvement: apply the proposal's increments to the
    database (respecting caps) and return the updated context — re-run
    {!answer} to get the improved result set. *)

(** {1 Serving}

    A {!Session} is the warm, long-lived face of the engine: it owns a
    {!Caches.t} and keeps it plugged into every answer, so repeated
    queries reuse prepared plans and re-answers after
    {!Session.accept_proposal} recompute only the lineage classes the
    accepted increments dirtied (the rest are served from the per-epoch
    confidence cache).  Answers are bit-identical to cold
    {!val-answer} calls — property-tested across solvers, jobs levels,
    deadlines and the Monte-Carlo fallback. *)

module Session : sig
  type t

  val create : ?plan_capacity:int -> ?conf_max_entries:int -> context -> t
  (** Wrap a context for serving.  If [ctx.caches] is already set those
      caches are reused (the size options are then ignored); otherwise a
      fresh {!Caches.t} is created — defaults as {!Caches.create}. *)

  val context : t -> context
  (** The current context (advanced in place by
      {!Session.accept_proposal}). *)

  val set_context : t -> context -> unit
  (** Replace the wrapped context, e.g. after external database edits.
      The session's caches are kept plugged in (epoch validation makes
      stale entries unreachable); the [caches] field of the argument is
      ignored. *)

  val answer : t -> request -> (response, string) result
  (** {!val-answer} with the session's caches.  With [ctx.obs] set the
      serving wrapper additionally observes the end-to-end latency into
      the bounded [serving.answer_s] histogram (fixed memory, see
      {!Obs.Hdr}) and refreshes the [cache.*] and [db.*_epoch] gauges
      ({!Caches.export_gauges}). *)

  val prepare : t -> Query.t -> (Prepared.t, string) result
  (** Compile (or fetch) the prepared plan for a query without running
      it — the REPL's [\prepare].  Counted as [prepared.hit]/[.miss]
      like any other lookup. *)

  val batch : t -> request list -> (response, string) result list
  (** Answer a list of ⟨Q, principal, purpose, perc⟩ requests, in order.
      Before answering, the batch stage compiles one prepared plan per
      distinct query text, evaluates each once, and computes all
      distinct uncached lineage classes — in parallel over the
      {!Exec} pool when [ctx.jobs > 1] (per-class confidence is a pure,
      seed-stable function of the formula, so results are independent of
      the jobs level; cache writes stay on the calling thread).  Queries
      no batch member may access are not prewarmed.  The response list
      is element-for-element identical to mapping cold {!val-answer}
      over the requests.

      With [ctx.obs] set, each prewarmed class records a
      ["prewarm-class"] task span stitched under the ["batch"] span in
      class order (identical at any jobs level), the ladder rung each
      class used is counted post-join, the whole batch is observed into
      the bounded [serving.batch_s] histogram, and the serving gauges
      are refreshed. *)

  val accept_proposal : t -> proposal -> unit
  (** Apply an increment proposal to the session's database in place.
      The confidence epoch advances; the next lookup invalidates exactly
      the cached classes mentioning a raised tuple, so the follow-up
      re-answer reuses every untouched class ([serving.reused_classes]
      vs [serving.recomputed_classes]). *)

  val cache_stats : t -> (string * int) list
  (** {!Caches.stats} of the session's caches — the REPL's [\caches]. *)
end
