(** Fixed-size domain pool with fork-join combinators.

    A pool owns [jobs - 1] worker domains; the caller of a combinator is
    always the [jobs]-th worker, so a pool with [jobs = 1] spawns no
    domains at all and every combinator degenerates to the plain
    sequential loop — single-threaded behaviour is byte-identical to code
    that never heard of this module.

    {2 Determinism contract}

    Every combinator writes each item's output into its own slot and
    joins before returning, so as long as the task function is a pure
    function of its item (no shared mutable state, no ambient RNG), the
    result is a pure function of the inputs — independent of the jobs
    count, the chunk size and the scheduling order.  Callers that need
    randomness must pre-split deterministic per-chunk streams
    ({!Prng.Splitmix.split_n}) {e before} forking, never share one
    generator across tasks.

    {2 Exception safety}

    A raising task never kills a worker domain and never poisons the
    pool: the combinator runs every remaining chunk, then re-raises the
    exception of the {e lowest-indexed} failing chunk (deterministic
    regardless of which domain observed it first).  The pool stays usable
    afterwards.

    {2 Nesting}

    Combinators may be called from inside pool tasks (the inner call's
    submitting worker participates in the inner work, so progress never
    depends on a free worker being available).  {!shutdown} must only be
    called once no combinator is in flight. *)

type t

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — leave one core to
    the rest of the process. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains ([jobs] is clamped
    to at least 1; default {!default_jobs}). *)

val jobs : t -> int
(** Total parallelism, counting the participating caller. *)

val shutdown : t -> unit
(** Drain queued tasks, stop the workers, and join their domains.
    Idempotent.  Submitting work to a shut-down pool raises
    [Invalid_argument]. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on the way
    out, exceptions included. *)

val run_chunks : t -> chunks:int -> (int -> unit) -> unit
(** [run_chunks t ~chunks f] runs [f 0 .. f (chunks - 1)], distributing
    chunk indices over the workers and the caller.  The primitive under
    every other combinator. *)

val map_array : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]; results are positionally ordered.  [chunk] is
    the number of consecutive items claimed at a time (default: enough
    for ~4 chunks per job; use [~chunk:1] when items are heavy and
    uneven, like solver groups). *)

val mapi_array : ?chunk:int -> t -> (int -> 'a -> 'b) -> 'a array -> 'b array

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list

val parallel_for : ?chunk:int -> t -> lo:int -> hi:int -> (int -> unit) -> unit
(** [parallel_for t ~lo ~hi f] runs [f i] for [lo <= i < hi].  [f] must
    tolerate any execution order across indices. *)

val fork_join : t -> (unit -> 'a) -> (unit -> 'b) -> 'a * 'b
(** Run both thunks, possibly concurrently, and return both results. *)
