(* Fixed-size domain pool.

   Workers block on a mutex/condition-protected queue of thunks.  Fork-join
   combinators push one claiming loop per helper worker and run the same
   loop on the calling domain, so a pool is never required to have idle
   workers for progress: the caller alone can finish the whole batch (and
   on a single-core host usually does).  Chunk indices are claimed from an
   atomic counter; outputs land in per-index slots, which keeps results a
   pure function of the inputs regardless of scheduling. *)

type task = unit -> unit

type t = {
  jobs : int;
  queue : task Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.closed then None
    else begin
      Condition.wait t.has_work t.mutex;
      next ()
    end
  in
  let task = next () in
  Mutex.unlock t.mutex;
  match task with
  | None -> ()
  | Some task ->
    (* claiming loops catch their own exceptions; this belt-and-braces
       handler keeps a worker alive no matter what was submitted *)
    (try task () with _ -> ());
    worker_loop t

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let t =
    {
      jobs;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  if not t.closed then begin
    t.closed <- true;
    t.workers <- [];
    Condition.broadcast t.has_work
  end;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let submit t task =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Exec.Pool: submit to a shut-down pool"
  end;
  Queue.push task t.queue;
  Condition.signal t.has_work;
  Mutex.unlock t.mutex

(* Chaos-testable injection point: models a worker task blowing up.  A
   no-op unless the test suite armed a [Resilience.Fault] plan. *)
let chunk_fault () = Resilience.Fault.hit Resilience.Fault.site_pool_chunk

let run_chunks t ~chunks f =
  if chunks > 0 then begin
    if t.jobs = 1 || chunks = 1 then
      for i = 0 to chunks - 1 do
        chunk_fault ();
        f i
      done
    else begin
      let next = Atomic.make 0 in
      let pending = Atomic.make chunks in
      let finished = Mutex.create () in
      let all_done = Condition.create () in
      (* lowest-indexed failure wins, so the re-raised exception does not
         depend on which domain tripped first *)
      let failure : (int * exn) option Atomic.t = Atomic.make None in
      let record i e =
        let rec cas () =
          let cur = Atomic.get failure in
          let better = match cur with None -> true | Some (j, _) -> i < j in
          if better && not (Atomic.compare_and_set failure cur (Some (i, e)))
          then cas ()
        in
        cas ()
      in
      let finish_one () =
        if Atomic.fetch_and_add pending (-1) = 1 then begin
          Mutex.lock finished;
          Condition.broadcast all_done;
          Mutex.unlock finished
        end
      in
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < chunks then begin
          (try
             chunk_fault ();
             f i
           with e -> record i e);
          finish_one ();
          claim ()
        end
      in
      for _ = 2 to min t.jobs chunks do
        submit t claim
      done;
      claim ();
      Mutex.lock finished;
      while Atomic.get pending > 0 do
        Condition.wait all_done finished
      done;
      Mutex.unlock finished;
      match Atomic.get failure with Some (_, e) -> raise e | None -> ()
    end
  end

let default_chunk t n = max 1 ((n + (4 * t.jobs) - 1) / (4 * t.jobs))

let mapi_array ?chunk t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.jobs = 1 then Array.mapi f arr
  else begin
    let chunk =
      match chunk with Some c -> max 1 c | None -> default_chunk t n
    in
    let slots = Array.make n None in
    let chunks = (n + chunk - 1) / chunk in
    run_chunks t ~chunks (fun ci ->
        let lo = ci * chunk in
        let hi = min n (lo + chunk) in
        for i = lo to hi - 1 do
          slots.(i) <- Some (f i arr.(i))
        done);
    Array.map (function Some v -> v | None -> assert false) slots
  end

let map_array ?chunk t f arr = mapi_array ?chunk t (fun _ x -> f x) arr

let map_list ?chunk t f xs =
  Array.to_list (map_array ?chunk t f (Array.of_list xs))

let parallel_for ?chunk t ~lo ~hi f =
  let n = hi - lo in
  if n > 0 then begin
    if t.jobs = 1 then
      for i = lo to hi - 1 do
        f i
      done
    else begin
      let chunk =
        match chunk with Some c -> max 1 c | None -> default_chunk t n
      in
      let chunks = (n + chunk - 1) / chunk in
      run_chunks t ~chunks (fun ci ->
          let first = lo + (ci * chunk) in
          let last = min hi (first + chunk) - 1 in
          for i = first to last do
            f i
          done)
    end
  end

let fork_join t fa fb =
  if t.jobs = 1 then begin
    let a = fa () in
    let b = fb () in
    (a, b)
  end
  else begin
    let ra = ref None and rb = ref None in
    run_chunks t ~chunks:2 (fun i ->
        if i = 0 then ra := Some (fa ()) else rb := Some (fb ()));
    match (!ra, !rb) with
    | Some a, Some b -> (a, b)
    | _ -> assert false
  end
