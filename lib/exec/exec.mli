(** Multicore execution subsystem.

    A thin, dependency-free layer over stdlib [Domain]: {!Pool} provides a
    fixed-size domain pool with chunked fork-join combinators and a hard
    determinism contract (results are a pure function of inputs and seed,
    independent of the jobs count — see {!Pool}).  This module adds the
    process-wide jobs-count policy shared by the engine, the CLI and the
    benchmarks.

    Parallelism is opt-in everywhere: the resolved default is [1] unless
    the [PCQE_JOBS] environment variable or an explicit [--jobs]/[?jobs]
    request says otherwise, so library users, tests, and existing callers
    keep today's single-threaded behaviour bit for bit. *)

module Pool = Pool

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)]. *)

val env_var : string
(** ["PCQE_JOBS"].  Accepted values: a positive integer, or [0] / ["auto"]
    for {!default_jobs}.  Anything else is ignored. *)

val env_jobs : unit -> int option
(** The jobs count requested by [PCQE_JOBS], if any. *)

val resolve_jobs : ?jobs:int -> unit -> int
(** The effective jobs count: an explicit [?jobs] wins ([0] means auto),
    then [PCQE_JOBS], then [1].  Always at least 1.

    A positive [?jobs] request is clamped to
    [Domain.recommended_domain_count ()] — more domains than cores only
    adds contention (an oversubscribed bench sweep reports speedup < 1 on
    every point).  [PCQE_JOBS] is the deliberate escape hatch: its value
    is taken verbatim, unclamped, so operators (and the test suite) can
    force any level. *)

val with_pool_opt : jobs:int -> (Pool.t option -> 'a) -> 'a
(** [with_pool_opt ~jobs f] is [f None] when [jobs <= 1] (no domains are
    spawned), otherwise it runs [f (Some pool)] with a fresh [jobs]-wide
    pool, shutting it down on the way out. *)
