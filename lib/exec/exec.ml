module Pool = Pool

let default_jobs = Pool.default_jobs

let env_var = "PCQE_JOBS"

let env_jobs () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
    match String.trim s with
    | "" -> None
    | "auto" -> Some (default_jobs ())
    | s -> (
      match int_of_string_opt s with
      | Some 0 -> Some (default_jobs ())
      | Some j when j > 0 -> Some j
      | _ -> None))

(* Effective jobs are clamped to the host's core count: spawning more
   domains than cores only adds contention (every point of an
   oversubscribed sweep reports speedup < 1).  The PCQE_JOBS environment
   variable is the explicit escape hatch and is taken verbatim. *)
let clamp_to_cores j = max 1 (min j (Domain.recommended_domain_count ()))

let resolve_jobs ?jobs () =
  match jobs with
  | Some 0 -> default_jobs ()
  | Some j when j > 0 -> clamp_to_cores j
  | Some _ -> 1
  | None -> ( match env_jobs () with Some j -> j | None -> 1)

let with_pool_opt ~jobs f =
  if jobs <= 1 then f None else Pool.with_pool ~jobs (fun p -> f (Some p))
