module Pool = Pool

let default_jobs = Pool.default_jobs

let env_var = "PCQE_JOBS"

let env_jobs () =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some s -> (
    match String.trim s with
    | "" -> None
    | "auto" -> Some (default_jobs ())
    | s -> (
      match int_of_string_opt s with
      | Some 0 -> Some (default_jobs ())
      | Some j when j > 0 -> Some j
      | _ -> None))

let resolve_jobs ?jobs () =
  match jobs with
  | Some 0 -> default_jobs ()
  | Some j when j > 0 -> j
  | Some _ -> 1
  | None -> ( match env_jobs () with Some j -> j | None -> 1)

let with_pool_opt ~jobs f =
  if jobs <= 1 then f None else Pool.with_pool ~jobs (fun p -> f (Some p))
